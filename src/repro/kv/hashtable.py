"""Cuckoo hash table index, the IN-task data structure.

DIDO (like Mega-KV) indexes objects with a cuckoo hash table [Pagh &
Rodler]: ``num_hashes`` bucket choices per key, multi-slot buckets, and
displacement ("kicking") on insert.  Buckets store ``(signature, location)``
pairs rather than full keys, so a Search may return a false candidate that
the KC task later rejects — the table exposes signature-level search and the
store layer performs full-key verification.

Concurrency in the real system uses atomic compare-exchange for writes and
atomic loads for reads (paper Section III-B2).  This reproduction executes
pipeline stages deterministically, but the table keeps a per-bucket version
counter mimicking a seqlock so tests can assert the write-visibility
protocol, and all mutations go through single "atomic" bucket-slot updates.

Cost accounting: every operation returns the number of bucket reads/writes
it performed, which the simulator converts into memory accesses — this is
the runtime measurement the paper uses to estimate Insert cost ("we
calculate the average number of accessed buckets for an Insert operation at
runtime", Section IV-B).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import CapacityError, ConfigurationError
from repro.kv.objects import fnv1a64, key_signature

try:  # NumPy backs the optional signature mirror; everything else is pure.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

#: Slots per bucket; 4-way set-associativity is the common choice in
#: Mega-KV-like stores (one bucket per 32-byte index line on the GPU).
DEFAULT_SLOTS_PER_BUCKET = 4

#: Displacement chain limit before the insert is declared failed.
DEFAULT_MAX_KICKS = 64

#: Sentinel location meaning "slot empty".
EMPTY = -1


@dataclass
class IndexStats:
    """Running counters for index operations and their bucket traffic."""

    searches: int = 0
    inserts: int = 0
    deletes: int = 0
    search_bucket_reads: int = 0
    insert_bucket_writes: int = 0
    insert_kicks: int = 0
    failed_inserts: int = 0
    #: Insert+Delete pairs settled as one in-place slot rewrite (each also
    #: counts once in ``inserts`` and once in ``deletes``).
    reassigns: int = 0

    def average_insert_buckets(self) -> float:
        """Average buckets written per insert — the paper's runtime estimate
        of amortised Insert cost."""
        if self.inserts == 0:
            return 0.0
        return self.insert_bucket_writes / self.inserts

    def average_search_buckets(self) -> float:
        """Average buckets read per search; ~(n+1)/2 for n hash functions."""
        if self.searches == 0:
            return 0.0
        return self.search_bucket_reads / self.searches


@dataclass
class _Slot:
    signature: int = 0
    location: int = EMPTY


class SignatureMirror:
    """Struct-of-arrays copy of the table's ``(signature, location)`` slots.

    The vector engine's batched Search matches whole signature columns with
    one NumPy broadcast instead of probing bucket lists slot by slot — the
    coupled-architecture analogue of Mega-KV keeping its compact index in
    GPU-friendly arrays.  The table itself remains authoritative: every
    slot write goes through :meth:`CuckooHashTable._write_slot`, which
    updates both representations, so the mirror can never drift (the fuzz
    test in ``tests/test_vector_engine.py`` pins this down).
    """

    __slots__ = ("signatures", "locations")

    def __init__(self, buckets: list[list[_Slot]], slots_per_bucket: int):
        num_buckets = len(buckets)
        self.signatures = _np.zeros((num_buckets, slots_per_bucket), dtype=_np.uint32)
        self.locations = _np.full((num_buckets, slots_per_bucket), EMPTY, dtype=_np.int64)
        for bucket_idx, bucket in enumerate(buckets):
            for slot_idx, slot in enumerate(bucket):
                if slot.location != EMPTY:
                    self.signatures[bucket_idx, slot_idx] = slot.signature
                    self.locations[bucket_idx, slot_idx] = slot.location

    def write(self, bucket_idx: int, slot_idx: int, signature: int, location: int) -> None:
        self.signatures[bucket_idx, slot_idx] = signature
        self.locations[bucket_idx, slot_idx] = location


class CuckooHashTable:
    """Signature-indexed cuckoo hash table mapping keys to object locations.

    Parameters
    ----------
    num_buckets:
        Bucket count; rounded up to a power of two for mask indexing.
    num_hashes:
        Alternative bucket choices per key (the paper's ``n``; 2 matches
        Mega-KV).
    slots_per_bucket:
        Entries per bucket.
    max_kicks:
        Displacement chain limit; exceeding it raises :class:`CapacityError`.
    """

    def __init__(
        self,
        num_buckets: int,
        num_hashes: int = 2,
        slots_per_bucket: int = DEFAULT_SLOTS_PER_BUCKET,
        max_kicks: int = DEFAULT_MAX_KICKS,
    ):
        if num_buckets <= 0:
            raise ConfigurationError("num_buckets must be positive")
        if num_hashes < 2:
            raise ConfigurationError("cuckoo hashing needs at least 2 hash functions")
        if slots_per_bucket <= 0 or max_kicks <= 0:
            raise ConfigurationError("slots_per_bucket and max_kicks must be positive")
        size = 1
        while size < num_buckets:
            size <<= 1
        self._mask = size - 1
        self._num_hashes = num_hashes
        self._slots_per_bucket = slots_per_bucket
        self._max_kicks = max_kicks
        self._buckets: list[list[_Slot]] = [
            [_Slot() for _ in range(slots_per_bucket)] for _ in range(size)
        ]
        self._versions = [0] * size
        self._count = 0
        self.stats = IndexStats()
        # Probe specs are a pure function of the key and the (fixed) table
        # geometry, so they can be cached indefinitely; kept as a bounded
        # LRU so long-running servers under key churn hold only the hot
        # working set instead of leaking one entry per distinct key ever
        # seen.
        self._probe_cache: OrderedDict[bytes, tuple[int, list[int]]] = OrderedDict()
        self._probe_cache_cap = 1 << 17
        self._mirror: SignatureMirror | None = None
        # When a bulk apply is in flight, mirror writes buffer here as
        # {(bucket, slot): (signature, location)} and land in one batched
        # fancy-indexed store instead of one cell write per op.
        self._mirror_batch: dict[tuple[int, int], tuple[int, int]] | None = None

    # ------------------------------------------------------------------ info

    @property
    def num_buckets(self) -> int:
        return self._mask + 1

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def slots_per_bucket(self) -> int:
        return self._slots_per_bucket

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Total slots across all buckets."""
        return self.num_buckets * self._slots_per_bucket

    @property
    def load_factor(self) -> float:
        return self._count / self.capacity

    def bucket_version(self, index: int) -> int:
        """Seqlock-style version of bucket ``index`` (bumped on every write)."""
        return self._versions[index & self._mask]

    def expected_search_buckets(self) -> float:
        """Theoretical average buckets probed per search:
        ``(sum_{i=1..n} i) / n`` for ``n`` hash functions (paper Section
        IV-B)."""
        n = self._num_hashes
        return sum(range(1, n + 1)) / n

    # --------------------------------------------------------------- hashing

    def _bucket_index(self, key: bytes, which: int) -> int:
        return fnv1a64(key, seed=which + 1) & self._mask

    def candidate_buckets(self, key: bytes) -> list[int]:
        """All bucket indices where ``key`` may reside, in probe order."""
        return [self._bucket_index(key, i) for i in range(self._num_hashes)]

    def probe(self, key: bytes) -> tuple[int, list[int]]:
        """Precomputed probe spec: ``(signature, candidate bucket indices)``.

        The batch engine computes this once per distinct key per batch (as
        Mega-KV computes signatures during packet processing and ships them
        with the job) and feeds the ``*_prehashed`` operations, instead of
        re-hashing the key inside every index operation.
        """
        return key_signature(key), self.candidate_buckets(key)

    def probe_cached(self, key: bytes) -> tuple[int, list[int]]:
        """:meth:`probe` through the table's persistent LRU probe cache.

        Hot keys under skewed workloads recur across batches; caching their
        probe specs makes repeat index operations hash-free.  The cache is
        a true LRU bounded at ``_probe_cache_cap`` entries: a hit refreshes
        the key, a miss at capacity evicts the least-recently-used spec —
        so unbounded key churn recycles cold entries instead of growing the
        cache (or dropping the hot set wholesale) forever.
        """
        cache = self._probe_cache
        spec = cache.get(key)
        if spec is None:
            if len(cache) >= self._probe_cache_cap:
                cache.popitem(last=False)
            spec = cache[key] = self.probe(key)
        else:
            cache.move_to_end(key)
        return spec

    def forget_probes(self, keys) -> None:
        """Drop cached probe specs for ``keys`` (merge-time invalidation).

        Probe specs are geometry-pure, but a bulk merge may relocate a
        key's slot via cuckoo kicks; evicting merged keys keeps the cache
        honest by forcing the next operation to recompute against the
        post-merge table rather than trusting an entry minted before it.
        """
        cache = self._probe_cache
        pop = cache.pop
        for key in keys:
            pop(key, None)

    def bulk_probe(self, keys: list[bytes]) -> list[tuple[int, list[int]]]:
        """Probe specs for many keys at once, hashed in one vectorized pass.

        Uses the vector engine's column hasher (bit-exact with
        :func:`fnv1a64`) when NumPy is available, so merging a delta of N
        distinct keys costs one array pass instead of N pure-Python FNV
        walks.  Does *not* populate the probe cache — merge traffic is
        one-shot and would only churn the LRU.
        """
        if not keys:
            return []
        if _np is not None:
            try:
                from repro.engine.vector import MAX_VECTOR_KEY_BYTES, fnv_hash_columns
            except ImportError:  # pragma: no cover - engine package stripped
                fnv_hash_columns = None
            if fnv_hash_columns is not None and all(
                len(key) <= MAX_VECTOR_KEY_BYTES for key in keys
            ):
                states = fnv_hash_columns(keys, self._num_hashes + 1)
                # One .tolist() per column keeps the per-key spec assembly in
                # C — NumPy scalar indexing here costs ~1us per element.
                signatures = (states[0] & 0xFFFFFFFF).tolist()
                buckets = (states[1:] & self._mask).T.tolist()
                return list(zip(signatures, buckets))
        return [self.probe(key) for key in keys]

    # ----------------------------------------------------- signature mirror

    @property
    def mirror(self) -> SignatureMirror | None:
        """The NumPy signature mirror, if one has been attached."""
        return self._mirror

    def ensure_mirror(self) -> SignatureMirror:
        """Attach (or return) the NumPy mirror of the slot arrays.

        Built once from the authoritative buckets; afterwards every
        :meth:`_write_slot` updates both representations.  Raises
        :class:`ConfigurationError` when NumPy is unavailable.
        """
        if self._mirror is None:
            if _np is None:  # pragma: no cover - numpy-less installs
                raise ConfigurationError(
                    "the signature mirror requires numpy, which is not installed"
                )
            self._mirror = SignatureMirror(self._buckets, self._slots_per_bucket)
        return self._mirror

    # ------------------------------------------------------------ operations

    def search(self, key: bytes) -> tuple[list[int], int]:
        """Signature search for ``key``.

        Returns ``(candidate_locations, buckets_read)``.  Candidates are all
        locations whose slot signature matches — full-key comparison (the KC
        task) must confirm which, if any, is the real match.  Buckets are
        probed in order and probing stops at the first bucket containing a
        matching signature, modelling the short-circuit a real
        implementation performs.
        """
        return self.search_prehashed(*self.probe_cached(key))

    def search_prehashed(self, signature: int, buckets: list[int]) -> tuple[list[int], int]:
        """:meth:`search` with the key's probe spec already computed."""
        candidates: list[int] = []
        buckets_read = 0
        table = self._buckets
        for bucket_idx in buckets:
            buckets_read += 1
            found = [
                s.location
                for s in table[bucket_idx]
                if s.location != EMPTY and s.signature == signature
            ]
            if found:
                candidates.extend(found)
                break
        stats = self.stats
        stats.searches += 1
        stats.search_bucket_reads += buckets_read
        return candidates, buckets_read

    def multi_search(self, keys: list[bytes]) -> list[list[int]]:
        """Bulk search: candidate locations per key, in input order.

        One tight loop inside the table (probe specs via the persistent
        cache, stats updated in aggregate); each element is exactly what
        ``search(key)[0]`` would return.
        """
        probe = self.probe_cached
        table = self._buckets
        out: list[list[int]] = []
        append = out.append
        total_reads = 0
        for key in keys:
            signature, buckets = probe(key)
            candidates: list[int] = []
            buckets_read = 0
            for bucket_idx in buckets:
                buckets_read += 1
                found = [
                    s.location
                    for s in table[bucket_idx]
                    if s.location != EMPTY and s.signature == signature
                ]
                if found:
                    candidates.extend(found)
                    break
            total_reads += buckets_read
            append(candidates)
        stats = self.stats
        stats.searches += len(keys)
        stats.search_bucket_reads += total_reads
        return out

    def insert(self, key: bytes, location: int) -> int:
        """Insert ``key -> location``; returns buckets written.

        Duplicate signatures are allowed (two distinct keys may share one);
        inserting the *same* key again adds another entry — the store layer
        deletes the old entry first on overwrite, as Mega-KV does via its
        eviction-generated Delete.  Raises :class:`CapacityError` when the
        displacement chain exceeds ``max_kicks``.
        """
        if location < 0:
            raise ConfigurationError("location must be a non-negative slab offset")
        signature, buckets = self.probe_cached(key)
        return self.insert_prehashed(signature, buckets, location)

    def insert_prehashed(self, signature: int, buckets: list[int], location: int) -> int:
        """:meth:`insert` with the key's probe spec already computed."""
        if location < 0:
            raise ConfigurationError("location must be a non-negative slab offset")
        self.stats.inserts += 1
        writes = self._insert_signature(signature, location, buckets)
        self.stats.insert_bucket_writes += writes
        self._count += 1
        return writes

    def _insert_signature(self, signature: int, location: int, candidates: list[int]) -> int:
        writes = 0
        # Try an empty slot in any candidate bucket first.
        for bucket_idx in candidates:
            bucket = self._buckets[bucket_idx]
            for slot_idx, slot in enumerate(bucket):
                if slot.location == EMPTY:
                    self._write_slot(bucket_idx, slot_idx, signature, location)
                    return writes + 1
            writes += 1  # full bucket examined counts as a touch
        # All candidate buckets full: displace (kick) from the first one.
        victim_bucket = candidates[0]
        victim_slot_idx = (signature + location) % self._slots_per_bucket
        carried_sig, carried_loc = signature, location
        for kick in range(self._max_kicks):
            bucket = self._buckets[victim_bucket]
            slot = bucket[victim_slot_idx]
            evicted_sig, evicted_loc = slot.signature, slot.location
            self._write_slot(victim_bucket, victim_slot_idx, carried_sig, carried_loc)
            writes += 1
            self.stats.insert_kicks += 1
            if evicted_loc == EMPTY:
                return writes
            carried_sig, carried_loc = evicted_sig, evicted_loc
            # The evicted entry moves to one of its alternative buckets; we
            # derive them from the signature since the key is not stored.
            alt = (victim_bucket ^ fnv1a64(carried_sig.to_bytes(4, "little"))) & self._mask
            placed = False
            for slot2_idx, slot2 in enumerate(self._buckets[alt]):
                if slot2.location == EMPTY:
                    self._write_slot(alt, slot2_idx, carried_sig, carried_loc)
                    writes += 1
                    placed = True
                    break
            if placed:
                return writes
            victim_bucket = alt
            victim_slot_idx = (carried_sig + kick) % self._slots_per_bucket
        self.stats.failed_inserts += 1
        raise CapacityError(
            f"cuckoo insert failed after {self._max_kicks} kicks "
            f"(load factor {self.load_factor:.2f})"
        )

    def reassign_prehashed(
        self,
        signature: int,
        buckets: list[int],
        old_location: int,
        new_location: int,
    ) -> bool:
        """Fused Delete+Insert for a replaced key: rewrite the slot in place.

        The steady-state SET generates one index Insert and one Delete for
        the *same* key (paper §II-C2), so both ops share one probe spec and
        — when the old entry is found — one slot: overwriting its location
        settles the pair in a single bucket scan instead of an
        empty-then-refill round trip.  Counts as one insert plus one delete
        in the stats (the modelled op pair is unchanged; ``reassigns``
        records the fusion).  Returns ``False`` when no entry matches
        ``(signature, old_location)`` — e.g. the old version's Insert is
        still pending in the current batch — and the caller falls back to
        the queued Delete + Insert pair.
        """
        if new_location < 0:
            raise ConfigurationError("location must be a non-negative slab offset")
        table = self._buckets
        for bucket_idx in buckets:
            slot_idx = 0
            for slot in table[bucket_idx]:
                if slot.location == old_location and slot.signature == signature:
                    self._rewrite_location(bucket_idx, slot_idx, new_location)
                    stats = self.stats
                    stats.inserts += 1
                    stats.deletes += 1
                    stats.insert_bucket_writes += 1
                    stats.reassigns += 1
                    return True
                slot_idx += 1
        # The old entry may have been kicked to a displacement-derived
        # bucket during an earlier insert; probe those too.
        for origin in range(self._num_hashes):
            bucket_idx = (
                fnv1a64(signature.to_bytes(4, "little"), seed=origin + 1) & self._mask
            )
            for slot_idx, slot in enumerate(table[bucket_idx]):
                if slot.location == old_location and slot.signature == signature:
                    self._rewrite_location(bucket_idx, slot_idx, new_location)
                    stats = self.stats
                    stats.inserts += 1
                    stats.deletes += 1
                    stats.insert_bucket_writes += 1
                    stats.reassigns += 1
                    return True
        return False

    def delete(self, key: bytes, location: int | None = None) -> bool:
        """Remove the entry for ``key`` (optionally matching ``location``).

        Returns True when an entry was removed.  Probes the same buckets a
        search would.
        """
        return self.delete_prehashed(*self.probe_cached(key), location)

    def delete_prehashed(
        self, signature: int, buckets: list[int], location: int | None = None
    ) -> bool:
        """:meth:`delete` with the key's probe spec already computed."""
        self.stats.deletes += 1
        for bucket_idx in buckets:
            bucket = self._buckets[bucket_idx]
            for slot_idx, slot in enumerate(bucket):
                if slot.location == EMPTY or slot.signature != signature:
                    continue
                if location is not None and slot.location != location:
                    continue
                self._write_slot(bucket_idx, slot_idx, 0, EMPTY)
                self._count -= 1
                return True
        # The entry may have been kicked to a derived bucket during insert.
        removed = self._delete_displaced(signature, location)
        if removed:
            self._count -= 1
        return removed

    def _delete_displaced(self, signature: int, location: int | None) -> bool:
        """Fallback scan of displacement-derived buckets for kicked entries."""
        for origin in range(self._num_hashes):
            bucket_idx = fnv1a64(signature.to_bytes(4, "little"), seed=origin + 1) & self._mask
            for slot_idx, slot in enumerate(self._buckets[bucket_idx]):
                if slot.location == EMPTY or slot.signature != signature:
                    continue
                if location is not None and slot.location != location:
                    continue
                self._write_slot(bucket_idx, slot_idx, 0, EMPTY)
                return True
        if location is None:
            return False
        # Last resort: a bounded linear probe is not representative of the
        # real structure, so instead scan all buckets only when a concrete
        # location is known (unit tests exercise this path; the store always
        # supplies locations).
        for bucket_idx, bucket in enumerate(self._buckets):
            for slot_idx, slot in enumerate(bucket):
                if slot.location == location and slot.signature == signature:
                    self._write_slot(bucket_idx, slot_idx, 0, EMPTY)
                    return True
        return False

    def bulk_apply_prehashed(
        self,
        deletes=(),
        reassigns=(),
        inserts=(),
    ) -> tuple[int, int, int]:
        """Apply a merged batch of index ops in one pass.

        The delta index calls this at merge time with prehashed rows:

        - ``deletes``: ``(signature, buckets, location | None)`` tombstones,
        - ``reassigns``: ``(signature, buckets, old_location, new_location)``
          for keys whose main entry moves to a new heap location,
        - ``inserts``: ``(signature, buckets, location)`` fresh bindings.

        Deletes and reassigns are resolved with **one** NumPy gather against
        the signature mirror (when attached): every row's candidate buckets
        are matched for ``(signature, old_location)`` simultaneously, and
        each hit becomes a single slot write.  The gather snapshot stays
        valid throughout because distinct ``(signature, old_location)``
        pairs can only match distinct slots — a slot *is* that pair —
        and duplicate pairs are routed to the scalar path, which reads the
        authoritative ``_Slot`` objects.  Rows the gather misses (entries
        kicked to displacement-derived buckets, or already gone) also fall
        back to the scalar probes.  Frees happen before fills so inserts
        see the emptied slots.  Mirror writes buffer in ``_mirror_batch``
        and flush as one fancy-indexed store per array at the end (in a
        ``finally`` so a :class:`CapacityError` mid-insert cannot leave the
        mirror stale).

        Returns ``(removed, reassigned, inserted)`` op counts.
        """
        stats = self.stats
        removed = reassigned = inserted = 0
        scalar_deletes: list[tuple[int, list[int], int | None]] = []
        scalar_reassigns: list[tuple[int, list[int], int, int]] = []
        vec_rows: list[tuple[int, list[int], int, int | None]] = []
        if self._mirror is not None:
            self._mirror_batch = {}
        try:
            if _np is not None and self._mirror is not None and (deletes or reassigns):
                seen: set[tuple[int, int]] = set()
                for sig, buckets, old in deletes:
                    if old is None or (sig, old) in seen:
                        scalar_deletes.append((sig, buckets, old))
                    else:
                        seen.add((sig, old))
                        vec_rows.append((sig, buckets, old, None))
                for sig, buckets, old, new in reassigns:
                    if (sig, old) in seen:
                        scalar_reassigns.append((sig, buckets, old, new))
                    else:
                        seen.add((sig, old))
                        vec_rows.append((sig, buckets, old, new))
            else:
                scalar_deletes.extend(deletes)
                scalar_reassigns.extend(reassigns)
            if vec_rows:
                mirror = self._mirror
                n = len(vec_rows)
                num_hashes = self._num_hashes
                slots = self._slots_per_bucket
                cand = _np.array([row[1] for row in vec_rows], dtype=_np.intp)
                sigs = _np.fromiter(
                    (row[0] for row in vec_rows), dtype=_np.uint32, count=n
                )
                olds = _np.fromiter(
                    (row[2] for row in vec_rows), dtype=_np.int64, count=n
                )
                hit = (mirror.locations[cand] == olds[:, None, None]) & (
                    mirror.signatures[cand] == sigs[:, None, None]
                )
                flat = hit.reshape(n, num_hashes * slots)
                hit_mask = flat.any(axis=1)
                first = flat.argmax(axis=1)
                hit_bucket = _np.take_along_axis(
                    cand, (first // slots)[:, None], axis=1
                )[:, 0]
                hit_slot = first % slots
                # Mirror sync for every vector hit is two fancy-indexed
                # stores (the batched-write half of the merge contract);
                # distinct (signature, old) pairs hit distinct slots, so
                # the fancy store never writes one cell twice.  These land
                # directly rather than through ``_mirror_store`` — the
                # gather snapshot above is already taken, and scalar
                # fallbacks run after this block, so their buffered writes
                # still win on flush.
                is_delete = _np.fromiter(
                    (row[3] is None for row in vec_rows), dtype=bool, count=n
                )
                news = _np.fromiter(
                    (EMPTY if row[3] is None else row[3] for row in vec_rows),
                    dtype=_np.int64,
                    count=n,
                )
                mb_bucket = hit_bucket[hit_mask]
                mb_slot = hit_slot[hit_mask]
                mirror.signatures[mb_bucket, mb_slot] = _np.where(is_delete, 0, sigs)[
                    hit_mask
                ]
                mirror.locations[mb_bucket, mb_slot] = news[hit_mask]
                # Authoritative slots: hand the loop plain Python ints —
                # scalar array indexing here would dominate the merge.
                has_hit = hit_mask.tolist()
                hb_list = hit_bucket.tolist()
                hs_list = hit_slot.tolist()
                table = self._buckets
                versions = self._versions
                vec_removed = vec_reassigned = 0
                for i, (sig, buckets, old, new) in enumerate(vec_rows):
                    if has_hit[i]:
                        bucket_idx = hb_list[i]
                        slot = table[bucket_idx][hs_list[i]]
                        if new is None:
                            slot.signature = 0
                            slot.location = EMPTY
                            vec_removed += 1
                        else:
                            slot.location = new
                            vec_reassigned += 1
                        versions[bucket_idx] += 1
                    elif new is None:
                        scalar_deletes.append((sig, buckets, old))
                    else:
                        scalar_reassigns.append((sig, buckets, old, new))
                self._count -= vec_removed
                removed += vec_removed
                reassigned += vec_reassigned
                stats.deletes += vec_removed + vec_reassigned
                stats.inserts += vec_reassigned
                stats.insert_bucket_writes += vec_reassigned
                stats.reassigns += vec_reassigned
            for sig, buckets, old in scalar_deletes:
                if self.delete_prehashed(sig, buckets, old):
                    removed += 1
            pending_inserts = list(inserts)
            for sig, buckets, old, new in scalar_reassigns:
                if self.reassign_prehashed(sig, buckets, old, new):
                    reassigned += 1
                else:
                    # The old entry vanished between absorb and merge (e.g.
                    # a full-table-scan delete); fall back to the unfused
                    # Delete + Insert pair the reassign stood for.
                    if self.delete_prehashed(sig, buckets, old):
                        removed += 1
                    pending_inserts.append((sig, buckets, new))
            for sig, buckets, location in pending_inserts:
                self.insert_prehashed(sig, buckets, location)
                inserted += 1
        finally:
            self._flush_mirror_batch()
        return removed, reassigned, inserted

    def bulk_apply_columns(self, signatures, buckets, classes) -> tuple[int, int, int]:
        """Column-form :meth:`bulk_apply_prehashed` (NumPy + mirror required).

        ``signatures``/``buckets`` are the delta's aligned hash columns
        (``uint32 (n,)`` / ``intp (n, H)``) and ``classes`` is the
        ``(del_idx, del_old, re_idx, re_old, re_new, ins_idx, ins_loc)``
        plan from :meth:`~repro.kv.deltaindex.DeltaIndex.merge_columns`.
        Works like the tuple form but never materialises per-row tuples or
        bucket lists: the candidate matrix is one fancy gather of ``buckets``
        rows, hits land with two fancy-indexed mirror stores plus a bare
        slot-object loop, and only gather misses, duplicate
        ``(signature, old)`` pairs, and fresh inserts drop to the scalar
        prehashed calls (with their bucket lists built lazily).  Keeping
        the plan columnar matters beyond speed: tuple-form merges allocated
        tens of thousands of GC-tracked containers, and the resulting
        collector pauses dominated write-heavy mixes.

        Returns ``(removed, reassigned, inserted)`` op counts.
        """
        del_idx, del_old, re_idx, re_old, re_new, ins_idx, ins_loc = classes
        stats = self.stats
        removed = reassigned = inserted = 0
        mirror = self._mirror
        if mirror is None or _np is None:
            raise ConfigurationError(
                "bulk_apply_columns needs numpy and an attached signature mirror"
            )
        num_deletes = len(del_idx)
        n = num_deletes + len(re_idx)
        miss_rows: list[int] = []
        if n:
            idx = _np.array(del_idx + re_idx, dtype=_np.intp)
            olds = _np.array(del_old + re_old, dtype=_np.int64)
            sigs = signatures[idx].astype(_np.int64)
            news = _np.empty(n, dtype=_np.int64)
            news[:num_deletes] = EMPTY
            news[num_deletes:] = re_new
            new_sigs = signatures[idx].copy()
            new_sigs[:num_deletes] = 0
            # Duplicate (signature, old) pairs would race the gather
            # snapshot (a slot *is* that pair, so only distinct pairs are
            # guaranteed distinct slots): keep the first of each run,
            # route the rest through the scalar calls below.
            order = _np.lexsort((olds, sigs))
            dup_sorted = _np.zeros(n, dtype=bool)
            if n > 1:
                so = sigs[order]
                oo = olds[order]
                dup_sorted[1:] = (so[1:] == so[:-1]) & (oo[1:] == oo[:-1])
            dup = _np.zeros(n, dtype=bool)
            dup[order] = dup_sorted
            vec = ~dup
            vidx = idx[vec]
            cand = buckets[vidx]
            sigs_v = signatures[vidx]
            olds_v = olds[vec]
            news_v = news[vec]
            nsig_v = new_sigs[vec]
            slots = self._slots_per_bucket
            hit = (mirror.locations[cand] == olds_v[:, None, None]) & (
                mirror.signatures[cand] == sigs_v[:, None, None]
            )
            flat = hit.reshape(len(vidx), self._num_hashes * slots)
            hit_mask = flat.any(axis=1)
            first = flat.argmax(axis=1)
            hit_bucket = _np.take_along_axis(cand, (first // slots)[:, None], axis=1)[
                :, 0
            ]
            hit_slot = first % slots
            mirror.signatures[hit_bucket[hit_mask], hit_slot[hit_mask]] = nsig_v[
                hit_mask
            ]
            mirror.locations[hit_bucket[hit_mask], hit_slot[hit_mask]] = news_v[
                hit_mask
            ]
            table = self._buckets
            versions = self._versions
            del_sel = hit_mask & (news_v == EMPTY)
            re_sel = hit_mask & (news_v != EMPTY)
            for bucket_idx, slot_idx in zip(
                hit_bucket[del_sel].tolist(), hit_slot[del_sel].tolist()
            ):
                slot = table[bucket_idx][slot_idx]
                slot.signature = 0
                slot.location = EMPTY
                versions[bucket_idx] += 1
            for bucket_idx, slot_idx, new in zip(
                hit_bucket[re_sel].tolist(),
                hit_slot[re_sel].tolist(),
                news_v[re_sel].tolist(),
            ):
                table[bucket_idx][slot_idx].location = new
                versions[bucket_idx] += 1
            vec_removed = int(del_sel.sum())
            vec_reassigned = int(re_sel.sum())
            self._count -= vec_removed
            removed += vec_removed
            reassigned += vec_reassigned
            stats.deletes += vec_removed + vec_reassigned
            stats.inserts += vec_reassigned
            stats.insert_bucket_writes += vec_reassigned
            stats.reassigns += vec_reassigned
            if not hit_mask.all():
                miss_rows = _np.nonzero(~hit_mask)[0].tolist()
        self._mirror_batch = {}
        try:
            for j in miss_rows:
                sig = int(sigs_v[j])
                row = int(vidx[j])
                bucket_list = buckets[row].tolist()
                old = int(olds_v[j])
                new = int(news_v[j])
                if new == EMPTY:
                    if self.delete_prehashed(sig, bucket_list, old):
                        removed += 1
                elif self.reassign_prehashed(sig, bucket_list, old, new):
                    reassigned += 1
                else:
                    # The old entry vanished between absorb and merge; fall
                    # back to the unfused Delete + Insert pair.
                    if self.delete_prehashed(sig, bucket_list, old):
                        removed += 1
                    self.insert_prehashed(sig, bucket_list, new)
                    inserted += 1
            if n:
                dup_rows = _np.nonzero(dup)[0].tolist()
                for j in dup_rows:
                    row = int(idx[j])
                    sig = int(signatures[row])
                    bucket_list = buckets[row].tolist()
                    old = int(olds[j])
                    new = int(news[j])
                    if new == EMPTY:
                        if self.delete_prehashed(sig, bucket_list, old):
                            removed += 1
                    elif self.reassign_prehashed(sig, bucket_list, old, new):
                        reassigned += 1
                    else:
                        if self.delete_prehashed(sig, bucket_list, old):
                            removed += 1
                        self.insert_prehashed(sig, bucket_list, new)
                        inserted += 1
            if ins_idx:
                sig_list = signatures[ins_idx].tolist()
                for i, sig, location in zip(ins_idx, sig_list, ins_loc):
                    self.insert_prehashed(sig, buckets[i].tolist(), location)
                    inserted += 1
        finally:
            self._flush_mirror_batch()
        return removed, reassigned, inserted

    def _flush_mirror_batch(self) -> None:
        """Land buffered mirror writes as one fancy-indexed store per array."""
        batch, self._mirror_batch = self._mirror_batch, None
        if not batch or self._mirror is None:
            return
        mirror = self._mirror
        n = len(batch)
        rows = _np.empty(n, dtype=_np.intp)
        cols = _np.empty(n, dtype=_np.intp)
        sigs = _np.empty(n, dtype=_np.uint32)
        locs = _np.empty(n, dtype=_np.int64)
        for i, ((bucket_idx, slot_idx), (signature, location)) in enumerate(batch.items()):
            rows[i] = bucket_idx
            cols[i] = slot_idx
            sigs[i] = signature
            locs[i] = location
        mirror.signatures[rows, cols] = sigs
        mirror.locations[rows, cols] = locs

    def _mirror_store(self, bucket_idx: int, slot_idx: int, signature: int, location: int) -> None:
        """The single mirror-write point for every *scalar* slot mutation.

        All scalar writers (:meth:`_write_slot` and :meth:`_rewrite_location`)
        funnel through here, so mirror coherence is asserted in exactly one
        place.  During a :meth:`bulk_apply_prehashed` the write is buffered
        into ``_mirror_batch`` (last write per cell wins) and flushed as one
        fancy-indexed store at the end of the merge.  The merge's vectorized
        hit path is the one other mirror writer: it stores all its cells with
        two fancy-indexed writes before any scalar fallback runs, so the
        flush ordering above still makes the scalar writes win.
        """
        batch = self._mirror_batch
        if batch is not None:
            batch[bucket_idx, slot_idx] = (signature, location)
        elif self._mirror is not None:
            self._mirror.write(bucket_idx, slot_idx, signature, location)

    def _rewrite_location(self, bucket_idx: int, slot_idx: int, location: int) -> None:
        """Slot rewrite for a reassign: the signature is unchanged, so only
        the location changes.  Version bump and mirror coherence go through
        the same :meth:`_mirror_store` point as :meth:`_write_slot`.
        """
        slot = self._buckets[bucket_idx][slot_idx]
        slot.location = location
        self._versions[bucket_idx] += 1
        self._mirror_store(bucket_idx, slot_idx, slot.signature, location)

    def _write_slot(self, bucket_idx: int, slot_idx: int, signature: int, location: int) -> None:
        """Single-slot "atomic compare-exchange" write with version bump.

        The one mutation point for slot state: the authoritative ``_Slot``
        and (when attached) the NumPy signature mirror are updated together
        via :meth:`_mirror_store`, so the two representations cannot
        diverge.
        """
        slot = self._buckets[bucket_idx][slot_idx]
        slot.signature = signature
        slot.location = location
        self._versions[bucket_idx] += 1
        self._mirror_store(bucket_idx, slot_idx, signature, location)

    # ------------------------------------------------------------- iteration

    def entries(self) -> list[tuple[int, int]]:
        """All ``(signature, location)`` pairs currently stored (test aid)."""
        out = []
        for bucket in self._buckets:
            for slot in bucket:
                if slot.location != EMPTY:
                    out.append((slot.signature, slot.location))
        return out
