"""UDP client for a :class:`~repro.server.DidoUDPServer`.

Provides both a convenient per-call API (``get``/``set``/``delete``) and the
batch API the paper's clients use (many queries per datagram, responses
matched by order).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from repro.errors import ConfigurationError, ProtocolError
from repro.kv.protocol import (
    Query,
    QueryType,
    Response,
    ResponseStatus,
    decode_responses,
    encode_queries,
)
from repro.server import MAX_DATAGRAM


class TimeoutError_(ConfigurationError):
    """The server did not answer within the client timeout."""


@dataclass
class ClientStats:
    batches_sent: int = 0
    responses_received: int = 0
    timeouts: int = 0


class DidoClient:
    """Blocking UDP client speaking the repro binary protocol.

    Parameters
    ----------
    address:
        The server's ``(host, port)``.
    timeout_s:
        Receive timeout per batch.
    """

    def __init__(self, address: tuple[str, int], timeout_s: float = 2.0):
        if timeout_s <= 0:
            raise ConfigurationError("timeout must be positive")
        self._address = address
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.settimeout(timeout_s)
        self.stats = ClientStats()

    def __enter__(self) -> "DidoClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._socket.close()

    # ---------------------------------------------------------------- batch

    def execute(self, queries: list[Query]) -> list[Response]:
        """Send one batch; block until all responses arrive (order matches
        the queries).  Batches larger than a UDP datagram are split across
        several sends; the server coalesces them back into one pipeline
        batch within its batching window."""
        if not queries:
            return []
        for group in _datagram_groups(queries):
            self._socket.sendto(encode_queries(group), self._address)
        self.stats.batches_sent += 1
        responses: list[Response] = []
        while len(responses) < len(queries):
            try:
                payload, _ = self._socket.recvfrom(MAX_DATAGRAM)
            except socket.timeout:
                self.stats.timeouts += 1
                raise TimeoutError_(
                    f"server answered {len(responses)}/{len(queries)} queries"
                ) from None
            try:
                responses.extend(decode_responses(payload))
            except ProtocolError as exc:
                raise TimeoutError_(f"undecodable response: {exc}") from exc
        self.stats.responses_received += len(responses)
        return responses

    # ------------------------------------------------------------ one-shots

    def set(self, key: bytes, value: bytes) -> bool:
        """Store ``key -> value``; True when the server acknowledged."""
        response = self.execute([Query(QueryType.SET, key, value)])[0]
        return response.status is ResponseStatus.STORED

    def get(self, key: bytes) -> bytes | None:
        """Fetch ``key``'s value, or None on a miss."""
        response = self.execute([Query(QueryType.GET, key)])[0]
        if response.status is ResponseStatus.OK:
            return response.value
        return None

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; True when it existed."""
        response = self.execute([Query(QueryType.DELETE, key)])[0]
        return response.status is ResponseStatus.DELETED

    def mget(self, keys: list[bytes]) -> dict[bytes, bytes]:
        """Batch GET; returns only the hits."""
        queries = [Query(QueryType.GET, key) for key in keys]
        out: dict[bytes, bytes] = {}
        for key, response in zip(keys, self.execute(queries)):
            if response.status is ResponseStatus.OK:
                out[key] = response.value
        return out


#: Keep client datagrams comfortably below the receive buffer bound.
_MAX_SEND_PAYLOAD = 48 * 1024


def _datagram_groups(queries: list[Query]) -> list[list[Query]]:
    """Split a batch into datagram-sized groups (order preserved)."""
    groups: list[list[Query]] = []
    current: list[Query] = []
    size = 0
    for query in queries:
        wire = query.wire_size
        if current and size + wire > _MAX_SEND_PAYLOAD:
            groups.append(current)
            current, size = [], 0
        current.append(query)
        size += wire
    if current:
        groups.append(current)
    return groups
