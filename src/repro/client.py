"""UDP clients for :class:`~repro.server.DidoUDPServer` deployments.

Provides both a convenient per-call API (``get``/``set``/``delete``) and the
batch API the paper's clients use (many queries per datagram, responses
matched by order).  :class:`ClusterClient` layers manifest-driven routing
on top: one batch is hash-split across the fleet, driven concurrently over
the same wire, and ``WRONG_NODE`` redirects are retried against refreshed
manifests until every query has a real answer.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ProtocolError
from repro.kv.protocol import (
    Query,
    QueryType,
    Response,
    ResponseStatus,
    decode_responses,
    encode_queries,
)
from repro.server import MAX_DATAGRAM


class TimeoutError_(ConfigurationError):
    """The server did not answer within the client timeout."""


@dataclass
class ClientStats:
    batches_sent: int = 0
    responses_received: int = 0
    timeouts: int = 0


class DidoClient:
    """Blocking UDP client speaking the repro binary protocol.

    Parameters
    ----------
    address:
        The server's ``(host, port)``.
    timeout_s:
        Receive timeout per batch.
    """

    def __init__(self, address: tuple[str, int], timeout_s: float = 2.0):
        if timeout_s <= 0:
            raise ConfigurationError("timeout must be positive")
        self._address = address
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.settimeout(timeout_s)
        self.stats = ClientStats()

    def __enter__(self) -> "DidoClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._socket.close()

    # ---------------------------------------------------------------- batch

    def execute(self, queries: list[Query]) -> list[Response]:
        """Send one batch; block until all responses arrive (order matches
        the queries).  Batches larger than a UDP datagram are split across
        several sends; the server coalesces them back into one pipeline
        batch within its batching window."""
        if not queries:
            return []
        for group in _datagram_groups(queries):
            self._socket.sendto(encode_queries(group), self._address)
        self.stats.batches_sent += 1
        responses: list[Response] = []
        while len(responses) < len(queries):
            try:
                payload, _ = self._socket.recvfrom(MAX_DATAGRAM)
            except socket.timeout:
                self.stats.timeouts += 1
                raise TimeoutError_(
                    f"server answered {len(responses)}/{len(queries)} queries"
                ) from None
            try:
                responses.extend(decode_responses(payload))
            except ProtocolError as exc:
                raise TimeoutError_(f"undecodable response: {exc}") from exc
        self.stats.responses_received += len(responses)
        return responses

    # ------------------------------------------------------------ one-shots

    def set(self, key: bytes, value: bytes) -> bool:
        """Store ``key -> value``; True when the server acknowledged."""
        response = self.execute([Query(QueryType.SET, key, value)])[0]
        return response.status is ResponseStatus.STORED

    def get(self, key: bytes) -> bytes | None:
        """Fetch ``key``'s value, or None on a miss."""
        response = self.execute([Query(QueryType.GET, key)])[0]
        if response.status is ResponseStatus.OK:
            return response.value
        return None

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; True when it existed."""
        response = self.execute([Query(QueryType.DELETE, key)])[0]
        return response.status is ResponseStatus.DELETED

    def mget(self, keys: list[bytes]) -> dict[bytes, bytes]:
        """Batch GET; returns only the hits."""
        queries = [Query(QueryType.GET, key) for key in keys]
        out: dict[bytes, bytes] = {}
        for key, response in zip(keys, self.execute(queries)):
            if response.status is ResponseStatus.OK:
                out[key] = response.value
        return out


#: Keep client datagrams comfortably below the receive buffer bound.
_MAX_SEND_PAYLOAD = 48 * 1024


# ---------------------------------------------------------------- cluster


@dataclass
class ClusterClientStats:
    """Counters a :class:`ClusterClient` keeps across its lifetime."""

    batches_sent: int = 0
    responses_received: int = 0
    redirects: int = 0
    retries: int = 0
    manifest_refreshes: int = 0
    timeouts: int = 0
    epochs_seen: list[int] = field(default_factory=list)


class ClusterClient:
    """Manifest-routed client for a multi-node cluster.

    A batch is split by key ownership under the current manifest, each
    sub-batch is executed against its owner, and the responses are
    scattered back into request order.  A ``WRONG_NODE`` response (the
    value carries the redirecting server's manifest epoch) marks that row
    for retry: when the hinted epoch is newer than ours the manifest is
    refreshed *from the redirecting node's control port* — during a
    membership change that node learns the new topology before the
    coordinator publishes it — and the row is re-routed.  Retries back
    off briefly (a joining node redirects until the coordinator activates
    it) and give up after ``retry_timeout_s``.

    Parameters
    ----------
    manifest_source:
        Either a :class:`~repro.cluster.manifest.ClusterManifest`, or the
        ``(host, port)`` of a control endpoint (coordinator or any node)
        to fetch one from.
    """

    def __init__(
        self,
        manifest_source,
        timeout_s: float = 2.0,
        retry_timeout_s: float = 30.0,
        retry_backoff_s: float = 0.002,
    ):
        from repro.cluster.manifest import ClusterManifest, ManifestRouter
        from repro.cluster.serving import fetch_manifest

        self._fetch_manifest = fetch_manifest
        self._make_router = ManifestRouter
        if isinstance(manifest_source, ClusterManifest):
            self.manifest = manifest_source
            self._source: tuple[str, int] | None = None
        else:
            self._source = (manifest_source[0], int(manifest_source[1]))
            self.manifest = fetch_manifest(self._source)
        self._router = ManifestRouter(self.manifest)
        self._timeout_s = timeout_s
        self._retry_timeout_s = retry_timeout_s
        self._retry_backoff_s = retry_backoff_s
        self._clients: dict[tuple[str, int], DidoClient] = {}
        self.stats = ClusterClientStats()
        self.stats.epochs_seen.append(self.manifest.epoch)

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    # ---------------------------------------------------------------- batch

    def execute(self, queries: list[Query]) -> list[Response]:
        """Split one batch across the fleet; responses in request order.

        Every returned response is a real outcome — redirects are resolved
        internally.  Raises :class:`TimeoutError_` if rows are still
        unanswered after ``retry_timeout_s`` (a node down, or a membership
        change that never converges).
        """
        if not queries:
            return []
        self.stats.batches_sent += 1
        responses: list[Response | None] = [None] * len(queries)
        pending = list(range(len(queries)))
        deadline = time.monotonic() + self._retry_timeout_s
        backoff = self._retry_backoff_s
        while pending:
            pending, refresh_from = self._execute_round(queries, responses, pending)
            if not pending:
                break
            if time.monotonic() >= deadline:
                raise TimeoutError_(
                    f"{len(pending)}/{len(queries)} queries unanswered after "
                    f"{self._retry_timeout_s:.1f}s of redirect retries"
                )
            self.stats.retries += 1
            if refresh_from is not None:
                self._refresh(refresh_from)
            time.sleep(backoff)
            backoff = min(backoff * 2, 0.05)
        self.stats.responses_received += len(queries)
        return responses  # type: ignore[return-value]

    def _execute_round(
        self,
        queries: list[Query],
        responses: list[Response | None],
        pending: list[int],
    ) -> tuple[list[int], tuple[str, int] | None]:
        """One routing round; returns rows still pending and, if a redirect
        hinted at a newer epoch, the control address to refresh from."""
        router = self._router
        names = router.names
        owner_ids = router.owner_ids_for([queries[row].key for row in pending])
        groups: dict[str, list[int]] = {}
        for row, owner in zip(pending, owner_ids):
            groups.setdefault(names[owner], []).append(row)
        still_pending: list[int] = []
        refresh_from: tuple[str, int] | None = None
        for name, rows in groups.items():
            info = self.manifest.nodes[name]
            client = self._client_for(info.address)
            try:
                answers = client.execute([queries[row] for row in rows])
            except TimeoutError_:
                # UDP loss: the sub-batch's response accounting is ruined,
                # so retire this socket (late stragglers must not bleed
                # into the next attempt) and retry the rows wholesale.
                self.stats.timeouts += 1
                self._drop_client(info.address)
                still_pending.extend(rows)
                continue
            for row, answer in zip(rows, answers):
                if answer.status is ResponseStatus.WRONG_NODE:
                    self.stats.redirects += 1
                    still_pending.append(row)
                    hint = (
                        int.from_bytes(answer.value[:8], "little")
                        if len(answer.value) >= 8
                        else 0
                    )
                    if hint > self.manifest.epoch:
                        refresh_from = info.control_address
                else:
                    responses[row] = answer
        return still_pending, refresh_from

    def _refresh(self, control_address: tuple[str, int]) -> None:
        for source in (control_address, self._source):
            if source is None:
                continue
            try:
                manifest = self._fetch_manifest(source)
            except Exception:  # noqa: BLE001 - any fetch failure -> next source
                continue
            if manifest.epoch > self.manifest.epoch:
                self.manifest = manifest
                self._router = self._make_router(manifest)
                self.stats.manifest_refreshes += 1
                self.stats.epochs_seen.append(manifest.epoch)
            return

    def _client_for(self, address: tuple[str, int]) -> DidoClient:
        address = (address[0], int(address[1]))
        client = self._clients.get(address)
        if client is None:
            client = DidoClient(address, timeout_s=self._timeout_s)
            self._clients[address] = client
        return client

    def _drop_client(self, address: tuple[str, int]) -> None:
        address = (address[0], int(address[1]))
        client = self._clients.pop(address, None)
        if client is not None:
            client.close()

    # ------------------------------------------------------------ one-shots

    def set(self, key: bytes, value: bytes) -> bool:
        response = self.execute([Query(QueryType.SET, key, value)])[0]
        return response.status is ResponseStatus.STORED

    def get(self, key: bytes) -> bytes | None:
        response = self.execute([Query(QueryType.GET, key)])[0]
        if response.status is ResponseStatus.OK:
            return response.value
        return None

    def delete(self, key: bytes) -> bool:
        response = self.execute([Query(QueryType.DELETE, key)])[0]
        return response.status is ResponseStatus.DELETED

    def mget(self, keys: list[bytes]) -> dict[bytes, bytes]:
        out: dict[bytes, bytes] = {}
        for key, response in zip(keys, self.execute([Query(QueryType.GET, k) for k in keys])):
            if response.status is ResponseStatus.OK:
                out[key] = response.value
        return out


def _datagram_groups(queries: list[Query]) -> list[list[Query]]:
    """Split a batch into datagram-sized groups (order preserved)."""
    groups: list[list[Query]] = []
    current: list[Query] = []
    size = 0
    for query in queries:
        wire = query.wire_size
        if current and size + wire > _MAX_SEND_PAYLOAD:
            groups.append(current)
            current, size = [], 0
        current.append(query)
        size += wire
    if current:
        groups.append(current)
    return groups
