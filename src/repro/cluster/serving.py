"""Multi-process cluster serving: ring-routed server fleet with live migration.

This module turns the simulation-side ring (:mod:`repro.cluster.ring`)
into a real serving substrate.  Three roles:

* :class:`NodeOwnership` — the per-server routing view a
  :class:`~repro.server.DidoUDPServer` consults each window: queries whose
  keys the node does not own under its current manifest are answered with
  ``WRONG_NODE`` redirects (carrying the manifest epoch) instead of
  touching the store.
* :class:`ClusterNode` — wraps one UDP server with a TCP **control plane**
  (newline-delimited JSON): manifest install with stale-epoch rejection,
  live key migration (donor side), migration import (receiver side), stats,
  and shutdown.  Everything that mutates the store — imported windows,
  the migration delta, the ownership flip — runs in the server's serve
  thread via its ``idle_hook``/``batch_hook``, so the store stays
  single-threaded and migration can never race batch processing.
* :class:`ClusterCoordinator` — spawns and monitors N ``repro serve``
  subprocesses, serves the authoritative manifest to clients, and
  orchestrates membership changes.

Migration state machine (donor side, per membership change)::

    idle -> scan -> bulk -> drained --(flip)--> delta -> flipped

* **scan**: snapshot the keys whose owner changes under the new manifest.
* **bulk**: stream them to their new owners as columnar SET windows over
  the receivers' import channels (the binary wire encoding of
  :mod:`repro.kv.protocol` framed over TCP — reliable, in-order, no
  pickle), a bounded chunk per serve-loop tick, while client traffic keeps
  being served from the local (still authoritative) copy.  Writes that
  land on moving keys during the copy are tracked in a **dirty set** by
  the server's batch hook.
* **delta + flip** (triggered by the coordinator once every donor's bulk
  pass has drained): re-stream the dirty keys, wait for the receivers to
  acknowledge application, install the new manifest (redirects start),
  and delete the moved keys locally — all inside one serve-loop tick, so
  the serve loop itself is the write barrier.

The coordinator sequences a change as: spawn/notify receivers (joiners
start **gated**, redirecting everything) -> ``transfer`` to every donor ->
barrier -> ``flip`` every donor -> ``install`` on untouched nodes ->
``activate`` joiners -> publish the new manifest.  At every instant each
key has exactly one server willing to answer for it authoritatively;
everyone else redirects, and clients retry redirects against refreshed
manifests.  Responses can be delayed by a membership change, never wrong.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.cluster.manifest import ClusterManifest, ManifestRouter
from repro.cluster.ring import HashRing
from repro.errors import ConfigurationError, ReproError
from repro.kv.protocol import Query, QueryType, encode_queries
from repro.net.wire import decode_payload
from repro.telemetry import get_telemetry

logger = logging.getLogger("repro.cluster.serving")

#: Payload bound for one migration SET window (matches the client bound).
MIGRATION_WINDOW_BYTES = 48 * 1024

#: Keys scanned/streamed per serve-loop tick during the bulk phase — the
#: knob trading migration speed against serve-loop latency blips.
MIGRATION_CHUNK_KEYS = 2048

#: Control-plane I/O timeout.
CONTROL_TIMEOUT_S = 30.0


class ClusterError(ReproError):
    """A cluster control-plane operation failed."""


# ---------------------------------------------------------------- ownership


class NodeOwnership:
    """One server's routing view: its name, manifest, and redirect payload.

    ``gated=True`` marks a joining node that holds arcs under the new
    manifest but has not been activated yet: it redirects *every* client
    query until the coordinator has drained all donors (migration imports
    bypass the data plane entirely, so the gate never blocks them).  A
    node *absent* from the manifest — one that has just migrated itself
    out of the cluster — owns nothing and is gated implicitly.
    """

    def __init__(self, manifest: ClusterManifest, name: str, *, gated: bool = False):
        self.manifest = manifest
        self.name = name
        self.epoch = manifest.epoch
        self.gated = gated or name not in manifest.nodes
        self.router = ManifestRouter(manifest)
        self._self_id = (
            self.router.names.index(name) if name in manifest.nodes else -1
        )
        self._single = len(manifest.nodes) == 1 and not self.gated and self._self_id == 0
        #: WRONG_NODE responses carry the epoch so clients know whether a
        #: manifest refresh could change the answer.
        self.redirect_value = manifest.epoch.to_bytes(8, "little")

    def misrouted_rows(self, keys: list[bytes]) -> list[int]:
        """Row indices this node must redirect (empty on the fast path)."""
        if self._single:
            return []
        if self.gated:
            return list(range(len(keys)))
        me = self._self_id
        ids = self.router.owner_ids_for(keys)
        return [i for i, owner in enumerate(ids) if owner != me]

    def owns(self, key: bytes) -> bool:
        return not self.gated and self.router.owner_for(key) == self.name


# ------------------------------------------------------------ control plane


def _send_json(sock: socket.socket, payload: dict) -> None:
    sock.sendall(json.dumps(payload).encode() + b"\n")


def _recv_line(reader) -> dict:
    line = reader.readline()
    if not line:
        raise ClusterError("control peer closed the connection")
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise ClusterError(f"malformed control message: {exc}") from exc


def control_request(
    address: tuple[str, int], payload: dict, timeout_s: float = CONTROL_TIMEOUT_S
) -> dict:
    """One request/reply round trip against a node or coordinator."""
    with socket.create_connection(address, timeout=timeout_s) as sock:
        _send_json(sock, payload)
        reply = _recv_line(sock.makefile("rb"))
    if not reply.get("ok", False):
        raise ClusterError(reply.get("error", "control request failed"))
    return reply


def fetch_manifest(address: tuple[str, int], timeout_s: float = CONTROL_TIMEOUT_S) -> ClusterManifest:
    """The current manifest of a node or coordinator control endpoint."""
    reply = control_request(address, {"cmd": "manifest"}, timeout_s)
    return ClusterManifest.from_dict(reply["manifest"])


class _ImportChannel:
    """Donor-side handle on a receiver's import channel (control TCP).

    Windows are fire-and-forward — TCP keeps them ordered and reliable —
    and :meth:`sync` blocks until the receiver's serve thread has applied
    everything queued so far.
    """

    def __init__(self, address: tuple[str, int], donor: str):
        self._sock = socket.create_connection(address, timeout=CONTROL_TIMEOUT_S)
        self._reader = self._sock.makefile("rb")
        self.sent_windows = 0
        self.sent_bytes = 0
        _send_json(self._sock, {"cmd": "import_begin", "from": donor})
        reply = _recv_line(self._reader)
        if not reply.get("ok", False):
            raise ClusterError(reply.get("error", "import_begin rejected"))

    def send_window(self, payload: bytes, count: int) -> None:
        _send_json(self._sock, {"cmd": "import_window", "bytes": len(payload), "count": count})
        self._sock.sendall(payload)
        reply = _recv_line(self._reader)
        if not reply.get("ok", False):
            raise ClusterError(reply.get("error", "import_window rejected"))
        self.sent_windows += 1
        self.sent_bytes += len(payload)

    def sync(self) -> int:
        _send_json(self._sock, {"cmd": "import_sync"})
        reply = _recv_line(self._reader)
        if not reply.get("ok", False):
            raise ClusterError(reply.get("error", "import_sync rejected"))
        return int(reply.get("applied", 0))

    def close(self) -> None:
        try:
            _send_json(self._sock, {"cmd": "import_end"})
        except OSError:  # pragma: no cover - peer already gone
            pass
        try:
            self._reader.close()
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass


# ---------------------------------------------------------------- migration


@dataclass
class MigrationReport:
    """Outcome of one donor-side migration."""

    epoch: int
    moved_keys: int = 0
    moved_bytes: int = 0
    windows: int = 0
    dirty_replayed: int = 0
    duration_s: float = 0.0


class _Migration:
    """Donor-side migration state; every method runs in the serve thread
    except :meth:`request_flip`/:meth:`wait_*` (control thread, which only
    flips events and waits)."""

    def __init__(self, node: "ClusterNode", manifest: ClusterManifest):
        self.node = node
        self.manifest = manifest
        self.router = ManifestRouter(manifest)
        self.phase = "scan"
        self.pending: deque[bytes] = deque()
        self.dirty: set[bytes] = set()
        self.channels: dict[str, _ImportChannel] = {}
        self.report = MigrationReport(epoch=manifest.epoch)
        self.error: str | None = None
        self.drained = threading.Event()   # bulk queue empty, windows synced
        self.flip_requested = threading.Event()
        self.finished = threading.Event()  # flipped (or failed)
        self._started = time.monotonic()

    # ------------------------------------------------------- serve-thread

    def step(self) -> None:
        try:
            if self.phase == "scan":
                self._scan()
            elif self.phase == "bulk":
                self._bulk_chunk()
            elif self.phase == "drained" and self.flip_requested.is_set():
                self._delta_and_flip()
        except (ClusterError, OSError) as exc:
            logger.error("migration to epoch %d failed: %s", self.manifest.epoch, exc)
            self.error = str(exc)
            self._close_channels()
            self.phase = "failed"
            self.drained.set()
            self.finished.set()

    def _owner_of(self, key: bytes) -> str:
        return self.router.owner_for(key)

    def _scan(self) -> None:
        name = self.node.name
        store = self.node.server.system.store
        keys = [obj.key for obj in store.heap.objects()]
        if keys:
            owners = self.router.owners_for(keys)
            self.pending.extend(
                key for key, owner in zip(keys, owners) if owner != name
            )
        self.report.moved_keys = len(self.pending)
        logger.info(
            "%s: migrating %d keys toward epoch %d",
            name, len(self.pending), self.manifest.epoch,
        )
        self.phase = "bulk"
        if not self.pending:
            self._mark_drained()

    def _channel_for(self, owner: str) -> _ImportChannel:
        channel = self.channels.get(owner)
        if channel is None:
            info = self.manifest.nodes[owner]
            channel = _ImportChannel(info.control_address, self.node.name)
            self.channels[owner] = channel
        return channel

    def _stream(self, queries_by_owner: dict[str, list[Query]]) -> None:
        for owner, queries in queries_by_owner.items():
            channel = self._channel_for(owner)
            group: list[Query] = []
            size = 0
            for query in queries:
                wire = query.wire_size
                if group and size + wire > MIGRATION_WINDOW_BYTES:
                    channel.send_window(encode_queries(group), len(group))
                    group, size = [], 0
                group.append(query)
                size += wire
            if group:
                channel.send_window(encode_queries(group), len(group))

    def _bulk_chunk(self) -> None:
        store = self.node.server.system.store
        by_owner: dict[str, list[Query]] = {}
        taken = 0
        while self.pending and taken < MIGRATION_CHUNK_KEYS:
            key = self.pending.popleft()
            taken += 1
            value = store.get(key)
            if value is None:
                continue  # deleted since the scan; nothing to move
            by_owner.setdefault(self._owner_of(key), []).append(
                Query(QueryType.SET, key, value)
            )
            # The value just streamed is current; only a *later* write
            # needs the delta pass.
            self.dirty.discard(key)
        if by_owner:
            self._stream(by_owner)
        if not self.pending:
            self._mark_drained()

    def _mark_drained(self) -> None:
        # Bulk windows are fire-and-forward; make them durable before
        # reporting the transfer drained.
        for channel in self.channels.values():
            channel.sync()
        self._account()
        self.phase = "drained"
        self.drained.set()

    def _delta_and_flip(self) -> None:
        store = self.node.server.system.store
        name = self.node.name
        by_owner: dict[str, list[Query]] = {}
        replayed = 0
        for key in self.dirty:
            owner = self._owner_of(key)
            if owner == name:
                continue
            value = store.get(key)
            query = (
                Query(QueryType.DELETE, key)
                if value is None
                else Query(QueryType.SET, key, value)
            )
            by_owner.setdefault(owner, []).append(query)
            replayed += 1
        if by_owner:
            self._stream(by_owner)
        for channel in self.channels.values():
            channel.sync()
        self.report.dirty_replayed = replayed
        # Flip: redirects start, then the moved keys are dropped locally.
        # Same serve-loop tick, so no batch can interleave.
        self.node._install(self.manifest)
        moved = [
            obj.key
            for obj in store.heap.objects()
            if self._owner_of(obj.key) != name
        ]
        for key in moved:
            store.delete(key)
        self._account()
        self._close_channels()
        self.report.duration_s = time.monotonic() - self._started
        self.phase = "flipped"
        self.finished.set()
        logger.info(
            "%s: flipped to epoch %d (%d keys, %d bytes, %d dirty replayed)",
            name, self.manifest.epoch, self.report.moved_keys,
            self.report.moved_bytes, replayed,
        )

    def _account(self) -> None:
        self.report.windows = sum(c.sent_windows for c in self.channels.values())
        self.report.moved_bytes = sum(c.sent_bytes for c in self.channels.values())

    def _close_channels(self) -> None:
        for channel in self.channels.values():
            channel.close()
        self.channels.clear()

    # ----------------------------------------------------- control-thread

    def track_writes(self, keys: list[bytes]) -> None:
        """Record written keys that belong elsewhere under the new manifest
        (serve thread, via the server's batch hook)."""
        name = self.node.name
        for key in keys:
            if self._owner_of(key) != name:
                self.dirty.add(key)

    def wait_drained(self, timeout_s: float) -> bool:
        return self.drained.wait(timeout_s)

    def request_flip(self) -> None:
        self.flip_requested.set()

    def wait_finished(self, timeout_s: float) -> bool:
        return self.finished.wait(timeout_s)


# -------------------------------------------------------------- ClusterNode


class ClusterNode:
    """One cluster member: UDP data plane + TCP control plane.

    Parameters
    ----------
    name:
        This node's name in the manifest.
    server:
        The wrapped :class:`~repro.server.DidoUDPServer` (not yet started).
    manifest:
        The initial manifest (must contain ``name``).
    control_address:
        ``(host, port)`` for the TCP control listener; port 0 picks one.
    gated:
        Start redirecting every client query (a joining node awaiting
        activation).
    """

    def __init__(
        self,
        name: str,
        server,
        manifest: ClusterManifest,
        control_address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        gated: bool = False,
    ):
        self.name = name
        self.server = server
        self.manifest = manifest
        self.ownership = NodeOwnership(manifest, name, gated=gated)
        server.ownership = self.ownership
        server.batch_hook = self._on_batch
        server.idle_hook = self._tick
        self._migration: _Migration | None = None
        self.last_report: MigrationReport | None = None
        #: FIFO of (payload, count, applied_event, result) import windows
        #: queued by control connections, drained by the serve thread.
        self._imports: deque[list] = deque()
        self._imports_applied = 0
        self._imports_lock = threading.Lock()
        self._control = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._control.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._control.bind(control_address)
        self._control.listen(16)
        self._control.settimeout(0.2)
        self._running = threading.Event()
        self._threads: list[threading.Thread] = []
        self._export_gauges()

    # ------------------------------------------------------------ lifecycle

    @property
    def control_address(self) -> tuple[str, int]:
        return self._control.getsockname()

    def start(self) -> None:
        """Start the data plane (background thread) and the control plane."""
        self._running.set()
        self.server.start()
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)

    def serve_forever(self) -> None:
        """Run the data plane in the calling thread (the CLI entry point)."""
        self._running.set()
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        self.server.serve_forever()

    def stop(self) -> None:
        self._running.clear()
        self.server.stop()
        try:
            self._control.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __enter__(self) -> "ClusterNode":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------- serve-thread

    def _tick(self) -> None:
        """Serve-loop hook: apply queued import windows, advance migration."""
        while True:
            with self._imports_lock:
                if not self._imports:
                    break
                entry = self._imports.popleft()
            payload, count, event = entry[0], entry[1], entry[2]
            applied = self._apply_import(payload)
            if applied != count:
                logger.warning(
                    "import window applied %d/%d queries", applied, count
                )
            with self._imports_lock:
                self._imports_applied += applied
            event.set()
        migration = self._migration
        if migration is not None:
            migration.step()
            if migration.finished.is_set():
                self.last_report = migration.report
                self._migration = None

    def _apply_import(self, payload: bytes) -> int:
        """Apply one migration window directly to the store (serve thread;
        imports bypass the ownership gate by construction)."""
        store = self.server.system.store
        columns = decode_payload(payload)
        applied = 0
        for qtype, key, value in zip(columns.qtypes, columns.keys, columns.values):
            if qtype is QueryType.SET:
                store.set(key, value)
            elif qtype is QueryType.DELETE:
                store.delete(key)
            applied += 1
        return applied

    def _on_batch(self, batch) -> None:
        migration = self._migration
        if migration is None or migration.phase not in ("scan", "bulk", "drained"):
            return
        if hasattr(batch, "qtypes"):
            qtypes, keys = batch.qtypes, batch.keys
        else:
            qtypes = [q.qtype for q in batch]
            keys = [q.key for q in batch]
        written = [
            key for qtype, key in zip(qtypes, keys) if qtype is not QueryType.GET
        ]
        if written:
            migration.track_writes(written)

    def _install(self, manifest: ClusterManifest) -> None:
        """Swap the ownership view (serve thread or pre-start only)."""
        self.manifest = manifest
        self.ownership = NodeOwnership(manifest, self.name)
        self.server.ownership = self.ownership
        self._export_gauges()

    def _owned_arcs(self) -> int:
        info = self.manifest.nodes.get(self.name)
        return len(info.points) if info is not None else 0

    def _export_gauges(self) -> None:
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        telemetry.registry.gauge(
            "repro_cluster_owned_arcs",
            help="Ring vnode points owned under the current manifest",
        ).set(self._owned_arcs(), node=self.name)
        telemetry.registry.gauge(
            "repro_cluster_manifest_epoch",
            help="Manifest epoch currently installed",
        ).set(self.manifest.epoch, node=self.name)

    # ------------------------------------------------------ control-thread

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, peer = self._control.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            worker = threading.Thread(
                target=self._serve_control, args=(conn, peer), daemon=True
            )
            worker.start()

    def _serve_control(self, conn: socket.socket, peer) -> None:
        conn.settimeout(CONTROL_TIMEOUT_S)
        reader = conn.makefile("rb")
        try:
            while self._running.is_set():
                try:
                    request = _recv_line(reader)
                except ClusterError:
                    return  # peer closed (normal) or spoke garbage
                reply = self._dispatch(request, reader)
                _send_json(conn, reply)
                if request.get("cmd") == "shutdown":
                    return
                if request.get("cmd") == "import_begin" and reply.get("ok"):
                    # The connection switches to the import framing (JSON
                    # line + binary window payload) until import_end.
                    self._serve_import(conn, reader)
                    return
        except OSError:  # pragma: no cover - peer vanished mid-reply
            pass
        finally:
            try:
                reader.close()
                conn.close()
            except OSError:  # pragma: no cover - double close
                pass

    def _dispatch(self, request: dict, reader) -> dict:
        cmd = request.get("cmd")
        try:
            if cmd == "ping":
                return {
                    "ok": True, "name": self.name,
                    "epoch": self.manifest.epoch,
                    "gated": self.ownership.gated,
                }
            if cmd == "manifest":
                return {"ok": True, "manifest": self.manifest.to_dict()}
            if cmd == "stats":
                return {"ok": True, **self._stats()}
            if cmd == "install":
                return self._cmd_install(request)
            if cmd == "activate":
                return self._cmd_activate()
            if cmd == "transfer":
                return self._cmd_transfer(request)
            if cmd == "flip":
                return self._cmd_flip(request)
            if cmd == "import_begin":
                return self._cmd_import(reader, request)
            if cmd == "shutdown":
                # Reply first (the caller waits for it), then stop: clearing
                # the run flag makes serve_forever return and the process exit.
                threading.Thread(target=self.stop, daemon=True).start()
                return {"ok": True}
            return {"ok": False, "error": f"unknown control command {cmd!r}"}
        except (ReproError, OSError) as exc:
            return {"ok": False, "error": str(exc)}

    def _stats(self) -> dict:
        stats = self.server.stats
        report = self.last_report
        return {
            "name": self.name,
            "pid": os.getpid(),
            "epoch": self.manifest.epoch,
            "gated": self.ownership.gated,
            "owned_arcs": self._owned_arcs(),
            "keys": len(self.server.system.store),
            "queries": stats.queries,
            "batches": stats.batches,
            "redirects": stats.redirects,
            "protocol_errors": stats.protocol_errors,
            "migration": None
            if report is None
            else {
                "epoch": report.epoch,
                "moved_keys": report.moved_keys,
                "moved_bytes": report.moved_bytes,
                "windows": report.windows,
                "dirty_replayed": report.dirty_replayed,
                "duration_s": round(report.duration_s, 4),
            },
        }

    def _check_epoch(self, manifest: ClusterManifest) -> None:
        if manifest.epoch <= self.manifest.epoch:
            raise ClusterError(
                f"stale manifest epoch {manifest.epoch} "
                f"(current is {self.manifest.epoch})"
            )

    def _cmd_install(self, request: dict) -> dict:
        manifest = ClusterManifest.from_dict(request["manifest"])
        self._check_epoch(manifest)
        if self.name not in manifest.nodes:
            raise ClusterError(f"node {self.name!r} absent from manifest")
        if self._migration is not None:
            raise ClusterError("migration in progress; use transfer/flip")
        # Installs only ever *gain or keep* arcs for this node (losing arcs
        # goes through transfer/flip), so swapping outside the serve thread
        # is safe: the worst interleaving answers one in-flight window
        # under the old, stricter view.
        self._install(manifest)
        return {"ok": True, "epoch": manifest.epoch}

    def _cmd_activate(self) -> dict:
        if not self.ownership.gated:
            return {"ok": True, "epoch": self.manifest.epoch, "already": True}
        self.ownership = NodeOwnership(self.manifest, self.name)
        self.server.ownership = self.ownership
        return {"ok": True, "epoch": self.manifest.epoch}

    def _cmd_transfer(self, request: dict) -> dict:
        manifest = ClusterManifest.from_dict(request["manifest"])
        self._check_epoch(manifest)
        if self._migration is not None:
            raise ClusterError("migration already in progress")
        migration = _Migration(self, manifest)
        self._migration = migration
        timeout = float(request.get("timeout_s", 300.0))
        if not migration.wait_drained(timeout):
            raise ClusterError("bulk transfer did not drain in time")
        if migration.error:
            raise ClusterError(migration.error)
        return {
            "ok": True,
            "epoch": manifest.epoch,
            "moved_keys": migration.report.moved_keys,
            "moved_bytes": migration.report.moved_bytes,
        }

    def _cmd_flip(self, request: dict) -> dict:
        migration = self._migration
        epoch = int(request.get("epoch", 0))
        if migration is None:
            # Transfer already finished and flipped?  Idempotent success.
            if self.manifest.epoch == epoch and self.last_report is not None:
                return {"ok": True, "epoch": epoch, "already": True}
            raise ClusterError("no migration in progress")
        if migration.manifest.epoch != epoch:
            raise ClusterError(
                f"flip epoch {epoch} does not match transfer epoch "
                f"{migration.manifest.epoch}"
            )
        migration.request_flip()
        timeout = float(request.get("timeout_s", 300.0))
        if not migration.wait_finished(timeout):
            raise ClusterError("flip did not complete in time")
        if migration.error:
            raise ClusterError(migration.error)
        report = self.last_report
        telemetry = get_telemetry()
        if telemetry.enabled and report is not None:
            telemetry.registry.counter(
                "repro_cluster_migration_bytes_total",
                help="Bytes streamed out by live key migration",
            ).inc(report.moved_bytes, node=self.name)
            telemetry.registry.counter(
                "repro_cluster_migration_keys_total",
                help="Keys streamed out by live key migration",
            ).inc(report.moved_keys, node=self.name)
        return {
            "ok": True,
            "epoch": epoch,
            "moved_keys": report.moved_keys if report else 0,
            "moved_bytes": report.moved_bytes if report else 0,
            "dirty_replayed": report.dirty_replayed if report else 0,
        }

    def _cmd_import(self, reader, request: dict) -> dict:
        """Serve one donor's import stream on this control connection."""
        donor = request.get("from", "?")
        logger.info("%s: import stream opened by %s", self.name, donor)
        # The begin ack is sent by the dispatcher's caller loop; windows
        # arrive as follow-up commands on the same connection, handled
        # here so the binary payloads never hit the JSON dispatcher.
        return {"ok": True, "importing": True}

    def _read_exact(self, reader, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = reader.read(remaining)
            if not chunk:
                raise ClusterError("import stream truncated")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _serve_import(self, conn: socket.socket, reader) -> None:
        """Handle import_window/import_sync/import_end after import_begin."""
        while True:
            request = _recv_line(reader)
            cmd = request.get("cmd")
            if cmd == "import_window":
                payload = self._read_exact(reader, int(request["bytes"]))
                event = threading.Event()
                with self._imports_lock:
                    self._imports.append([payload, int(request["count"]), event])
                _send_json(conn, {"ok": True})
            elif cmd == "import_sync":
                deadline = time.monotonic() + CONTROL_TIMEOUT_S
                while time.monotonic() < deadline:
                    with self._imports_lock:
                        drained = not self._imports
                        applied = self._imports_applied
                    if drained:
                        break
                    time.sleep(0.002)
                else:
                    _send_json(
                        conn, {"ok": False, "error": "import queue did not drain"}
                    )
                    continue
                _send_json(conn, {"ok": True, "applied": applied})
            elif cmd == "import_end":
                _send_json(conn, {"ok": True})
                return
            else:
                _send_json(
                    conn, {"ok": False, "error": f"unexpected {cmd!r} in import"}
                )


# -------------------------------------------------------------- coordinator


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free port (bind-to-zero probe)."""
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def free_tcp_port(host: str = "127.0.0.1") -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class _Member:
    """One spawned fleet member as the coordinator tracks it."""

    name: str
    host: str
    port: int
    control_port: int
    process: subprocess.Popen
    log_path: str

    @property
    def control_address(self) -> tuple[str, int]:
        return (self.host, self.control_port)


class ClusterCoordinator:
    """Spawns, monitors, and reshapes a fleet of ``repro serve`` processes.

    The coordinator owns the authoritative ring and manifest, publishes
    the manifest over its own TCP control endpoint, and drives membership
    changes through the node control plane: spawn/notify receivers ->
    ``transfer`` every donor -> barrier -> ``flip`` -> ``activate``
    joiners/``install`` survivors -> publish.

    Parameters
    ----------
    nodes:
        Initial node count.
    host:
        Loopback-or-LAN address every plane binds to.
    serve_args:
        Extra ``repro serve`` CLI arguments appended to every spawn
        (engine/pipeline/store configuration).
    vnodes:
        Virtual points per node on the ring.
    workdir:
        Where manifests and per-node logs live; a temp dir by default.
    """

    def __init__(
        self,
        nodes: int = 2,
        host: str = "127.0.0.1",
        serve_args: list[str] | None = None,
        vnodes: int | None = None,
        workdir: str | None = None,
        control_port: int = 0,
        python: str | None = None,
        env: dict[str, str] | None = None,
    ):
        if nodes < 1:
            raise ConfigurationError("a cluster needs at least one node")
        self.host = host
        self.serve_args = list(serve_args or [])
        self.vnodes = vnodes if vnodes is not None else HashRing().vnodes
        if workdir:
            os.makedirs(workdir, exist_ok=True)
            self._workdir = workdir
        else:
            self._workdir = tempfile.mkdtemp(prefix="repro-cluster-")
        self._python = python or sys.executable
        self._env = dict(env) if env is not None else dict(os.environ)
        self._members: dict[str, _Member] = {}
        self._next_id = 0
        self._epoch = 0
        self._ring = HashRing(self.vnodes)
        self.manifest: ClusterManifest | None = None
        self._lock = threading.RLock()
        self._initial_nodes = nodes
        self._control = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._control.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._control.bind((host, control_port))
        self._control.listen(16)
        self._control.settimeout(0.2)
        self._running = threading.Event()
        self._stopped = threading.Event()

    # ------------------------------------------------------------ lifecycle

    @property
    def control_address(self) -> tuple[str, int]:
        return self._control.getsockname()

    @property
    def epoch(self) -> int:
        return self._epoch

    def start(self, timeout_s: float = 30.0) -> None:
        """Spawn the initial fleet and start serving the manifest."""
        with self._lock:
            names = [self._fresh_name() for _ in range(self._initial_nodes)]
            ring = self._ring
            for name in names:
                ring.add_node(name)
            members = [self._reserve(name) for name in names]
            manifest = self._snapshot(1)
            path = self._write_manifest(manifest)
            for member in members:
                self._spawn(member, path)
            for member in members:
                self._wait_ready(member, timeout_s)
            self._epoch = 1
            self.manifest = manifest
        self._running.set()
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        logger.info(
            "cluster up: %d nodes, manifest epoch 1, control %s:%d",
            len(names), *self.control_address,
        )

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (the ``repro cluster`` foreground)."""
        self._stopped.wait()

    def shutdown(self, timeout_s: float = 15.0) -> None:
        """Drain any in-flight membership change, then tear down the fleet.

        Taking the membership lock *is* the drain: add/remove hold it for
        their full transfer-flip-publish sequence, so shutdown cannot
        interleave with a half-finished migration.
        """
        with self._lock:
            if self._stopped.is_set():
                return
            self._running.clear()
            for member in self._members.values():
                try:
                    control_request(
                        member.control_address, {"cmd": "shutdown"}, timeout_s=5.0
                    )
                except (ClusterError, OSError):
                    pass  # already gone; the reaper below catches it
            deadline = time.monotonic() + timeout_s
            for member in self._members.values():
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    member.process.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    member.process.terminate()
                    try:
                        member.process.wait(timeout=2.0)
                    except subprocess.TimeoutExpired:  # pragma: no cover
                        member.process.kill()
                        member.process.wait()
            self._members.clear()
            try:
                self._control.close()
            except OSError:  # pragma: no cover - double close
                pass
            self._stopped.set()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ----------------------------------------------------------- membership

    def add_node(self, name: str | None = None, timeout_s: float = 300.0) -> dict:
        """Grow the fleet by one node with live key migration."""
        with self._lock:
            self._require_running()
            started = time.monotonic()
            name = name or self._fresh_name()
            if name in self._members:
                raise ClusterError(f"node {name!r} already in the cluster")
            donors = list(self._members)
            self._ring.add_node(name)
            member = self._reserve(name)
            epoch = self._epoch + 1
            manifest = self._snapshot(epoch)
            path = self._write_manifest(manifest)
            try:
                # The joiner boots gated: it redirects clients until every
                # donor has drained, so a half-copied arc is never served.
                self._spawn(member, path, gated=True)
                self._wait_ready(member, timeout_s=30.0)
                transfer = self._transfer_all(donors, manifest, timeout_s)
                for donor in donors:
                    control_request(
                        self._members[donor].control_address,
                        {"cmd": "flip", "epoch": epoch, "timeout_s": timeout_s},
                        timeout_s=timeout_s,
                    )
                control_request(member.control_address, {"cmd": "activate"})
            except (ClusterError, OSError):
                # Roll the topology back; the spawned joiner is torn down.
                self._ring.remove_node(name)
                self._members.pop(name, None)
                member.process.terminate()
                raise
            self._epoch = epoch
            self.manifest = manifest
            summary = {
                "node": name,
                "epoch": epoch,
                "moved_keys": sum(r["moved_keys"] for r in transfer.values()),
                "moved_bytes": sum(r["moved_bytes"] for r in transfer.values()),
                "duration_s": round(time.monotonic() - started, 4),
            }
            logger.info("added %(node)s: epoch %(epoch)d, %(moved_keys)d keys "
                        "(%(moved_bytes)d bytes) migrated in %(duration_s).2fs",
                        summary)
            return summary

    def remove_node(self, name: str, timeout_s: float = 300.0) -> dict:
        """Shrink the fleet by one node, migrating its keys out first."""
        with self._lock:
            self._require_running()
            started = time.monotonic()
            member = self._members.get(name)
            if member is None:
                raise ClusterError(f"node {name!r} not in the cluster")
            if len(self._members) == 1:
                raise ClusterError("cannot remove the last node")
            self._ring.remove_node(name)
            epoch = self._epoch + 1
            manifest = self._snapshot(epoch)
            self._write_manifest(manifest)
            try:
                # Only the leaving node loses arcs; survivors only gain.
                transfer = self._transfer_all([name], manifest, timeout_s)
                control_request(
                    member.control_address,
                    {"cmd": "flip", "epoch": epoch, "timeout_s": timeout_s},
                    timeout_s=timeout_s,
                )
                for survivor in self._members.values():
                    if survivor.name == name:
                        continue
                    control_request(
                        survivor.control_address,
                        {"cmd": "install", "manifest": manifest.to_dict()},
                    )
            except (ClusterError, OSError):
                self._ring.add_node(name)  # topology rollback; data unharmed
                raise
            self._epoch = epoch
            self.manifest = manifest
            try:
                control_request(member.control_address, {"cmd": "shutdown"})
                member.process.wait(timeout=10.0)
            except (ClusterError, OSError, subprocess.TimeoutExpired):
                member.process.terminate()
            self._members.pop(name)
            report = transfer[name]
            summary = {
                "node": name,
                "epoch": epoch,
                "moved_keys": report["moved_keys"],
                "moved_bytes": report["moved_bytes"],
                "duration_s": round(time.monotonic() - started, 4),
            }
            logger.info("removed %(node)s: epoch %(epoch)d, %(moved_keys)d keys "
                        "(%(moved_bytes)d bytes) migrated in %(duration_s).2fs",
                        summary)
            return summary

    def status(self) -> dict:
        """Published epoch plus per-node liveness and serving stats."""
        with self._lock:
            nodes = {}
            for member in self._members.values():
                alive = member.process.poll() is None
                entry: dict = {
                    "alive": alive,
                    "pid": member.process.pid,
                    "address": [member.host, member.port],
                    "control_port": member.control_port,
                }
                if alive:
                    try:
                        entry["stats"] = control_request(
                            member.control_address, {"cmd": "stats"}, timeout_s=5.0
                        )
                        entry["stats"].pop("ok", None)
                    except (ClusterError, OSError) as exc:
                        entry["stats_error"] = str(exc)
                nodes[member.name] = entry
            return {"epoch": self._epoch, "nodes": nodes}

    # ------------------------------------------------------------ internals

    def _require_running(self) -> None:
        if not self._running.is_set():
            raise ClusterError("coordinator is not running")

    def _fresh_name(self) -> str:
        self._next_id += 1
        return f"node{self._next_id}"

    def _reserve(self, name: str) -> _Member:
        member = _Member(
            name=name,
            host=self.host,
            port=free_port(self.host),
            control_port=free_tcp_port(self.host),
            process=None,  # type: ignore[arg-type]  # set by _spawn
            log_path=os.path.join(self._workdir, f"{name}.log"),
        )
        self._members[name] = member
        return member

    def _snapshot(self, epoch: int) -> ClusterManifest:
        addresses = {
            m.name: (m.host, m.port, m.control_port) for m in self._members.values()
        }
        return ClusterManifest.from_ring(epoch, self._ring, addresses)

    def _write_manifest(self, manifest: ClusterManifest) -> str:
        path = os.path.join(self._workdir, f"manifest-epoch-{manifest.epoch}.json")
        with open(path, "w") as handle:
            handle.write(manifest.to_json())
        return path

    def _spawn(self, member: _Member, manifest_path: str, *, gated: bool = False) -> None:
        command = [
            self._python, "-m", "repro", "serve",
            "--host", member.host,
            "--port", str(member.port),
            "--cluster-node", member.name,
            "--cluster-control-port", str(member.control_port),
            "--cluster-manifest", manifest_path,
        ]
        if gated:
            command.append("--cluster-gated")
        command.extend(self.serve_args)
        log = open(member.log_path, "ab")
        try:
            member.process = subprocess.Popen(
                command, stdout=log, stderr=subprocess.STDOUT, env=self._env
            )
        finally:
            log.close()

    def _wait_ready(self, member: _Member, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if member.process.poll() is not None:
                raise ClusterError(
                    f"node {member.name!r} exited with code "
                    f"{member.process.returncode} before becoming ready "
                    f"(see {member.log_path})"
                )
            try:
                control_request(
                    member.control_address, {"cmd": "ping"}, timeout_s=2.0
                )
                return
            except (ClusterError, OSError):
                time.sleep(0.05)
        raise ClusterError(f"node {member.name!r} did not become ready in time")

    def _transfer_all(
        self, donors: list[str], manifest: ClusterManifest, timeout_s: float
    ) -> dict[str, dict]:
        """Run ``transfer`` on every donor concurrently and barrier on all.

        Each transfer request blocks until that donor's bulk pass drains,
        so donors must run in parallel threads — a serial walk would make
        total migration time the *sum* of per-donor copies.
        """
        results: dict[str, dict] = {}
        errors: dict[str, str] = {}

        def run(donor: str) -> None:
            try:
                results[donor] = control_request(
                    self._members[donor].control_address,
                    {"cmd": "transfer", "manifest": manifest.to_dict(),
                     "timeout_s": timeout_s},
                    timeout_s=timeout_s,
                )
            except (ClusterError, OSError) as exc:
                errors[donor] = str(exc)

        threads = [
            threading.Thread(target=run, args=(donor,), daemon=True)
            for donor in donors
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout_s)
        if errors:
            raise ClusterError(f"transfer failed: {errors}")
        return results

    # -------------------------------------------------------- control plane

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _ = self._control.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            worker = threading.Thread(
                target=self._serve_control, args=(conn,), daemon=True
            )
            worker.start()

    def _serve_control(self, conn: socket.socket) -> None:
        conn.settimeout(CONTROL_TIMEOUT_S)
        reader = conn.makefile("rb")
        try:
            while True:
                try:
                    request = _recv_line(reader)
                except ClusterError:
                    return
                _send_json(conn, self._dispatch(request))
                if request.get("cmd") == "shutdown":
                    return
        except OSError:  # pragma: no cover - peer vanished mid-reply
            pass
        finally:
            try:
                reader.close()
                conn.close()
            except OSError:  # pragma: no cover - double close
                pass

    def _dispatch(self, request: dict) -> dict:
        cmd = request.get("cmd")
        try:
            if cmd == "ping":
                return {"ok": True, "epoch": self._epoch}
            if cmd == "manifest":
                if self.manifest is None:
                    raise ClusterError("no manifest published yet")
                return {"ok": True, "manifest": self.manifest.to_dict()}
            if cmd == "status":
                return {"ok": True, **self.status()}
            if cmd == "add_node":
                return {"ok": True, **self.add_node(request.get("name"))}
            if cmd == "remove_node":
                return {"ok": True, **self.remove_node(request["name"])}
            if cmd == "shutdown":
                threading.Thread(target=self.shutdown, daemon=True).start()
                return {"ok": True}
            return {"ok": False, "error": f"unknown control command {cmd!r}"}
        except KeyError as exc:
            return {"ok": False, "error": f"missing field {exc}"}
        except (ReproError, OSError) as exc:
            return {"ok": False, "error": str(exc)}


__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterNode",
    "MigrationReport",
    "NodeOwnership",
    "control_request",
    "fetch_manifest",
    "free_port",
    "free_tcp_port",
]
