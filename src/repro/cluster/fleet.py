"""A fleet of DIDO nodes behind a consistent-hash ring.

:class:`KVCluster` routes each query by key to a node and processes the
per-node batches through the nodes' full adaptive pipelines.  Failing a
node reroutes its keys to ring successors, shifting the survivors' key
popularity and sizes — the production scenario the paper cites as a driver
for runtime pipeline adaptation.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.cluster.ring import HashRing
from repro.core.dido import DidoSystem
from repro.errors import ConfigurationError
from repro.kv.protocol import Query, Response
from repro.hardware.specs import APU_A10_7850K, PlatformSpec
from repro.telemetry import get_telemetry

logger = logging.getLogger("repro.cluster.fleet")


@dataclass
class NodeStats:
    """Per-node summary for cluster reporting."""

    name: str
    queries: int
    replans: int
    pipeline: str


class KVCluster:
    """Consistent-hash cluster of adaptive DIDO nodes.

    Parameters
    ----------
    node_names:
        Names of the initial nodes.
    platform:
        Hardware model each node plans against.
    node_memory_bytes / expected_objects:
        Per-node store sizing.
    engine:
        Functional execution backend for every node's pipeline (see
        :class:`~repro.pipeline.functional.FunctionalPipeline`).
    shards:
        Shard count for every node's store (see
        :class:`~repro.kv.sharding.ShardedKVStore`); 1 keeps the
        single-partition store.
    """

    def __init__(
        self,
        node_names: list[str],
        platform: PlatformSpec = APU_A10_7850K,
        node_memory_bytes: int = 32 << 20,
        expected_objects: int = 32768,
        engine=None,
        shards: int = 1,
    ):
        if not node_names:
            raise ConfigurationError("a cluster needs at least one node")
        if len(set(node_names)) != len(node_names):
            raise ConfigurationError("node names must be unique")
        self.ring = HashRing()
        self.nodes: dict[str, DidoSystem] = {}
        self._queries_routed: dict[str, int] = {}
        for name in node_names:
            self.ring.add_node(name)
            self.nodes[name] = DidoSystem(
                platform,
                memory_bytes=node_memory_bytes,
                expected_objects=expected_objects,
                engine=engine,
                shards=shards,
            )
            self._queries_routed[name] = 0

    # --------------------------------------------------------------- routing

    def route(self, queries: list[Query]) -> dict[str, list[tuple[int, Query]]]:
        """Partition a client batch by owning node, keeping original order
        indices so responses can be reassembled."""
        routed: dict[str, list[tuple[int, Query]]] = {}
        for index, query in enumerate(queries):
            node = self.ring.node_for(query.key)
            routed.setdefault(node, []).append((index, query))
        return routed

    def process(self, queries: list[Query]) -> list[Response]:
        """Process a client batch across the fleet; responses in input order."""
        responses: list[Response | None] = [None] * len(queries)
        telemetry = get_telemetry()
        for node_name, indexed in self.route(queries).items():
            node = self.nodes[node_name]
            batch = [q for _, q in indexed]
            result = node.process(batch)
            self._queries_routed[node_name] += len(batch)
            if telemetry.enabled:
                telemetry.registry.counter(
                    "repro_cluster_node_queries_total",
                    help="Queries routed to each node",
                ).inc(len(batch), node=node_name)
            for (index, _), response in zip(indexed, result.responses):
                responses[index] = response
        return [r for r in responses if r is not None]

    # -------------------------------------------------------------- topology

    def fail_node(self, name: str) -> None:
        """Remove a node from the ring (its data is lost, as in a crash;
        subsequent GETs for its keys miss on the new owners and clients
        re-SET them — cache semantics)."""
        if name not in self.nodes:
            raise ConfigurationError(f"unknown node {name!r}")
        self.ring.remove_node(name)
        del self.nodes[name]
        del self._queries_routed[name]
        logger.info("node %s failed; %d survivors re-own its key range", name, len(self.nodes))
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.registry.counter(
                "repro_cluster_node_failures_total", help="Nodes removed from the ring"
            ).inc()

    # ------------------------------------------------------------- reporting

    def stats(self) -> list[NodeStats]:
        out = []
        for name, node in sorted(self.nodes.items()):
            report = node.report()
            out.append(
                NodeStats(
                    name=name,
                    queries=self._queries_routed[name],
                    replans=report.replans,
                    pipeline=report.current_pipeline,
                )
            )
        return out

    def total_replans(self) -> int:
        return sum(node.controller.replan_count for node in self.nodes.values())
