"""Consistent-hash ring (Karger et al.), the paper's reference [9].

Nodes are placed on a 64-bit ring at multiple virtual points; a key routes
to the first node point at or clockwise after its hash.  Removing a node
reassigns only that node's arcs — the property that makes failures cause
*partial* key redistribution (and hence workload shifts on survivors)
rather than a full reshuffle.
"""

from __future__ import annotations

import bisect

from repro.errors import ConfigurationError
from repro.kv.objects import fnv1a64

#: Default virtual points per node; more points -> smoother balance.
DEFAULT_VNODES = 64

_RING_SPACE = 1 << 64
_MASK = _RING_SPACE - 1


def _mix(value: int) -> int:
    """splitmix64 finaliser: FNV of short labels leaves the high bits
    poorly diffused, which skews ring placement badly; this fixes it."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


def key_point(key: bytes) -> int:
    """Ring position of ``key`` (the hash the router bisects against)."""
    return _mix(fnv1a64(key))


class HashRing:
    """A consistent-hash ring mapping keys to node names."""

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes <= 0:
            raise ConfigurationError("vnodes must be positive")
        self._vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()

    # -------------------------------------------------------------- topology

    def add_node(self, name: str) -> None:
        """Place ``name`` on the ring at its virtual points."""
        if not name:
            raise ConfigurationError("node name must be non-empty")
        if name in self._nodes:
            raise ConfigurationError(f"node {name!r} already on the ring")
        self._nodes.add(name)
        for i in range(self._vnodes):
            point = _mix(fnv1a64(f"{name}#{i}".encode()))
            # Extremely unlikely collision: nudge deterministically.
            while point in self._owners:
                point = (point + 1) % _RING_SPACE
            self._owners[point] = name
            bisect.insort(self._points, point)

    def remove_node(self, name: str) -> None:
        """Take ``name`` off the ring (its arcs fall to the successors)."""
        if name not in self._nodes:
            raise ConfigurationError(f"node {name!r} not on the ring")
        self._nodes.remove(name)
        points = [p for p, owner in self._owners.items() if owner == name]
        for point in points:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            self._points.pop(index)

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def __len__(self) -> int:
        return len(self._nodes)

    def points_of(self, name: str) -> list[int]:
        """The ring points ``name`` actually occupies (sorted), including
        any collision nudges — what a cluster manifest records so every
        router bisects the byte-identical ring."""
        if name not in self._nodes:
            raise ConfigurationError(f"node {name!r} not on the ring")
        return sorted(p for p, owner in self._owners.items() if owner == name)

    def owner_points(self) -> dict[int, str]:
        """Every ring point and its owner (a copy; manifest serialisation)."""
        return dict(self._owners)

    @classmethod
    def from_points(
        cls, owners: dict[int, str], vnodes: int = DEFAULT_VNODES
    ) -> "HashRing":
        """Rebuild a ring from explicit ``point -> owner`` placements.

        The inverse of :meth:`owner_points`: a manifest decoded on another
        host reconstructs the exact ring (nudged collisions included)
        without re-deriving placements from node names.
        """
        ring = cls(vnodes)
        for point, owner in owners.items():
            if not owner:
                raise ConfigurationError("node name must be non-empty")
            if point in ring._owners:
                raise ConfigurationError(f"duplicate ring point {point}")
            ring._owners[point] = owner
            ring._nodes.add(owner)
        ring._points = sorted(ring._owners)
        return ring

    # --------------------------------------------------------------- routing

    def node_for(self, key: bytes) -> str:
        """The node owning ``key`` (first point clockwise of its hash)."""
        if not self._points:
            raise ConfigurationError("ring has no nodes")
        point = key_point(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]

    def ownership_share(self, samples: int = 4096) -> dict[str, float]:
        """Approximate arc share per node (sampled; balance diagnostics)."""
        counts: dict[str, int] = {name: 0 for name in self._nodes}
        for i in range(samples):
            counts[self.node_for(f"sample-{i}".encode())] += 1
        return {name: count / samples for name, count in counts.items()}
