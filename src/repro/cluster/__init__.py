"""Multi-node substrate: consistent hashing over DIDO nodes.

The paper's motivation (Section II-C1) notes that production IMKV traffic
shifts abruptly "when machines go down, keys will be redistributed with
consistent hashing, which may change the workload characteristics of other
IMKV nodes".  This package provides that substrate in two tiers:

* **Simulation** — a consistent-hash ring (:mod:`repro.cluster.ring`)
  routing client queries across in-process
  :class:`~repro.core.dido.DidoSystem` nodes (:mod:`repro.cluster.fleet`),
  so node failure redistributes keys and each surviving node's adaptation
  controller reacts to its new mix.
* **Serving** — a real multi-process fleet over the columnar wire plane:
  epoch-stamped manifests (:mod:`repro.cluster.manifest`) shared by
  servers and client routers, and ring-routed ``repro serve`` processes
  with live key migration under a coordinator
  (:mod:`repro.cluster.serving`); see ``docs/cluster.md``.
"""

from repro.cluster.fleet import KVCluster, NodeStats
from repro.cluster.manifest import ClusterManifest, ManifestRouter, NodeInfo
from repro.cluster.ring import HashRing
from repro.cluster.serving import (
    ClusterCoordinator,
    ClusterError,
    ClusterNode,
    NodeOwnership,
    control_request,
    fetch_manifest,
)

__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterManifest",
    "ClusterNode",
    "HashRing",
    "KVCluster",
    "ManifestRouter",
    "NodeInfo",
    "NodeOwnership",
    "NodeStats",
    "control_request",
    "fetch_manifest",
]
