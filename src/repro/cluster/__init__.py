"""Multi-node substrate: consistent hashing over DIDO nodes.

The paper's motivation (Section II-C1) notes that production IMKV traffic
shifts abruptly "when machines go down, keys will be redistributed with
consistent hashing, which may change the workload characteristics of other
IMKV nodes".  This package provides that substrate: a consistent-hash ring
(:mod:`repro.cluster.ring`) routing client queries across a fleet of
:class:`~repro.core.dido.DidoSystem` nodes (:mod:`repro.cluster.fleet`),
so node failure genuinely redistributes keys and each surviving node's
adaptation controller reacts to its new mix.
"""

from repro.cluster.fleet import KVCluster, NodeStats
from repro.cluster.ring import HashRing

__all__ = ["HashRing", "KVCluster", "NodeStats"]
