"""Cluster manifest: the epoch-stamped topology document every router shares.

A manifest is the single source of truth for "who owns which arcs right
now": node name -> data-plane ``host:port`` -> control-plane port -> the
explicit ring vnode points that node occupies, stamped with a
monotonically increasing **epoch**.  It serialises to plain JSON (no
pickle anywhere on the cluster planes) so the coordinator can serve it
over a socket, write it to disk for spawned servers, and hand it to
clients.

Recording the *explicit* points — rather than re-deriving them from node
names — guarantees every participant bisects the byte-identical ring,
collision nudges included (see :meth:`repro.cluster.ring.HashRing.add_node`).

Epochs are how the cluster stays sane during membership change: servers
reject any manifest install whose epoch is not strictly greater than the
one they hold (stale-epoch rejection), and a ``WRONG_NODE`` redirect
carries the redirecting server's epoch so clients know to refresh before
retrying.

:class:`ManifestRouter` is the client-side hot path: it flattens the
manifest into one sorted point array plus an owner column and routes
whole key batches with a vectorized hash + ``searchsorted`` when NumPy is
available (bit-identical to :meth:`HashRing.node_for` key by key).
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass

from repro.cluster.ring import DEFAULT_VNODES, HashRing, key_point
from repro.errors import ConfigurationError

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

if np is not None:
    _U64 = np.uint64
    _SPLITMIX_A = np.uint64(0x9E3779B97F4A7C15)
    _SPLITMIX_B = np.uint64(0xBF58476D1CE4E5B9)
    _SPLITMIX_C = np.uint64(0x94D049BB133111EB)


@dataclass(frozen=True)
class NodeInfo:
    """One node's addresses and ring placement."""

    name: str
    host: str
    port: int
    control_port: int
    points: tuple[int, ...]

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def control_address(self) -> tuple[str, int]:
        return (self.host, self.control_port)


class ClusterManifest:
    """Epoch-stamped node -> address -> vnode-points topology."""

    def __init__(self, epoch: int, nodes: list[NodeInfo], vnodes: int = DEFAULT_VNODES):
        if epoch < 1:
            raise ConfigurationError("manifest epoch must be >= 1")
        if not nodes:
            raise ConfigurationError("a manifest needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError("manifest node names must be unique")
        seen: set[int] = set()
        for node in nodes:
            if not node.points:
                raise ConfigurationError(f"node {node.name!r} occupies no ring points")
            for point in node.points:
                if point in seen:
                    raise ConfigurationError(f"duplicate ring point {point}")
                seen.add(point)
        self.epoch = epoch
        self.vnodes = vnodes
        self.nodes: dict[str, NodeInfo] = {n.name: n for n in nodes}

    # ----------------------------------------------------------- construction

    @classmethod
    def from_ring(
        cls,
        epoch: int,
        ring: HashRing,
        addresses: dict[str, tuple[str, int, int]],
    ) -> "ClusterManifest":
        """Snapshot ``ring`` with each node's ``(host, port, control_port)``."""
        missing = ring.nodes - set(addresses)
        if missing:
            raise ConfigurationError(f"no address for ring nodes {sorted(missing)}")
        nodes = [
            NodeInfo(name, host, port, control_port, tuple(ring.points_of(name)))
            for name, (host, port, control_port) in addresses.items()
            if name in ring.nodes
        ]
        return cls(epoch, nodes, vnodes=ring.vnodes)

    def to_ring(self) -> HashRing:
        """The exact :class:`HashRing` this manifest describes."""
        owners = {
            point: info.name for info in self.nodes.values() for point in info.points
        }
        return HashRing.from_points(owners, vnodes=self.vnodes)

    # ---------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "vnodes": self.vnodes,
            "nodes": {
                info.name: {
                    "host": info.host,
                    "port": info.port,
                    "control_port": info.control_port,
                    "points": list(info.points),
                }
                for info in self.nodes.values()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterManifest":
        try:
            nodes = [
                NodeInfo(
                    name,
                    entry["host"],
                    int(entry["port"]),
                    int(entry["control_port"]),
                    tuple(int(p) for p in entry["points"]),
                )
                for name, entry in payload["nodes"].items()
            ]
            return cls(
                int(payload["epoch"]),
                nodes,
                vnodes=int(payload.get("vnodes", DEFAULT_VNODES)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed cluster manifest: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ClusterManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"malformed cluster manifest: {exc}") from exc
        return cls.from_dict(payload)

    # --------------------------------------------------------------- routing

    def owner_for(self, key: bytes) -> str:
        return ManifestRouter(self).owner_for(key)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ClusterManifest):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ClusterManifest(epoch={self.epoch}, "
            f"nodes={sorted(self.nodes)})"
        )


class ManifestRouter:
    """Flattened, batch-capable view of a manifest's ring.

    Owner lookups run against one sorted point array; with NumPy the
    whole key column is hashed (vectorized FNV-1a + splitmix64 finaliser,
    bit-identical to :func:`repro.cluster.ring.key_point`) and routed with
    a single ``searchsorted``.
    """

    def __init__(self, manifest: ClusterManifest):
        self.manifest = manifest
        pairs = sorted(
            (point, info.name)
            for info in manifest.nodes.values()
            for point in info.points
        )
        self._points = [p for p, _ in pairs]
        self._owner_ids: list[int] = []
        self.names = sorted(manifest.nodes)
        index = {name: i for i, name in enumerate(self.names)}
        self._owner_ids = [index[name] for _, name in pairs]
        self._np_points = (
            np.asarray(self._points, dtype=np.uint64) if np is not None else None
        )
        self._np_owners = (
            np.asarray(self._owner_ids, dtype=np.intp) if np is not None else None
        )

    def owner_for(self, key: bytes) -> str:
        point = key_point(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self.names[self._owner_ids[index]]

    def owner_ids_for(self, keys: list[bytes]):
        """Owner index (into :attr:`names`) per key, vectorized when possible."""
        if np is None or len(keys) < 16:
            points = self._points
            owners = self._owner_ids
            n = len(points)
            out = []
            for key in keys:
                index = bisect.bisect_right(points, key_point(key))
                out.append(owners[0 if index == n else index])
            return out
        hashes = _key_points_vector(keys)
        index = np.searchsorted(self._np_points, hashes, side="right")
        index[index == len(self._points)] = 0
        return self._np_owners[index].tolist()

    def owners_for(self, keys: list[bytes]) -> list[str]:
        names = self.names
        return [names[i] for i in self.owner_ids_for(keys)]


def _key_points_vector(keys: list[bytes]):
    """Vectorized :func:`repro.cluster.ring.key_point` over a key column."""
    from repro.engine.vector import fnv_hash_columns

    with np.errstate(over="ignore"):
        value = fnv_hash_columns(keys, 1)[0]
        value = value + _SPLITMIX_A
        value = (value ^ (value >> _U64(30))) * _SPLITMIX_B
        value = (value ^ (value >> _U64(27))) * _SPLITMIX_C
        return value ^ (value >> _U64(31))


__all__ = ["ClusterManifest", "ManifestRouter", "NodeInfo"]
