"""Pipelined load generator for the UDP server (``repro loadgen``).

A :class:`~repro.client.DidoClient` is a correctness tool: one batch in
flight, responses decoded into objects.  Measuring the server's wire plane
needs the opposite — datagrams pre-encoded once and replayed, several
windows in flight, and responses *counted* (header-walked) rather than
decoded — so the generator saturates the server instead of itself.

Two driving disciplines:

* **closed loop** — each worker keeps ``depth`` request datagrams in
  flight on its own socket, waits for the responses to its window, then
  immediately sends the next; measures sustainable throughput plus
  per-window latency percentiles.
* **open loop** — a sender paces datagrams at a target queries/second
  regardless of responses while a receiver thread counts what comes back;
  measures behaviour under offered load (the paper's client machines).

Both report a :class:`LoadgenReport`; the CLI prints it or dumps JSON for
the benchmark harness (``benchmarks/bench_wire_end_to_end.py``).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.kv.protocol import Query, QueryType, encode_queries
from repro.net.wire import RESPONSE_HEADER_BYTES
from repro.server import MAX_DATAGRAM

#: Keep request datagrams comfortably below the receive-buffer bound
#: (matches :data:`repro.client._MAX_SEND_PAYLOAD`).
MAX_SEND_PAYLOAD = 48 * 1024

#: Receive-buffer request for load-generator sockets.  Response bursts for
#: a deep window arrive faster than a worker thread drains them; the
#: kernel default (a few hundred KiB) drops datagrams under that burst and
#: every drop stalls a closed-loop window for its full timeout.
_RCVBUF_BYTES = 1 << 21


def _make_socket(timeout_s: float) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, _RCVBUF_BYTES)
    except OSError:  # pragma: no cover - platform refuses; defaults apply
        pass
    sock.settimeout(timeout_s)
    return sock


# --------------------------------------------------------------- workloads


@dataclass(frozen=True)
class WorkloadShape:
    """What the generated queries look like."""

    num_keys: int = 2048
    key_size: int = 16
    value_size: int = 64
    get_ratio: float = 0.95
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise ConfigurationError("need at least one key")
        if not 1 <= self.key_size <= 0xFFFF:
            raise ConfigurationError("key size must fit the u16 header field")
        if not 0 <= self.value_size <= 0xFFFFFFFF:
            raise ConfigurationError("value size must fit the u32 header field")
        if not 0.0 <= self.get_ratio <= 1.0:
            raise ConfigurationError("get ratio must be within [0, 1]")


def make_keys(shape: WorkloadShape) -> list[bytes]:
    """The deterministic keyspace for ``shape`` (used by prefill too)."""
    width = max(1, shape.key_size)
    return [
        (b"%08d" % i).rjust(width, b"k")[:width] for i in range(shape.num_keys)
    ]


@dataclass
class RequestTape:
    """Pre-encoded request datagrams, replayed verbatim by every worker.

    ``payloads[i]`` holds ``counts[i]`` encoded queries and the whole tape
    carries ``total_queries``; encoding happens once, so the measured loop
    is sendto/recv only.  ``response_bytes[i]`` is the exact response
    volume datagram ``i`` produces against a prefilled store (every GET
    hits, every SET stores): the closed loop counts received *bytes*
    against it instead of walking response headers, keeping the client
    out of the measurement on shared CPUs.
    """

    payloads: list[bytes]
    counts: list[int]
    total_queries: int
    response_bytes: list[int] = field(default_factory=list)


def build_tape(
    shape: WorkloadShape,
    queries: int,
    max_payload: int = MAX_SEND_PAYLOAD,
) -> RequestTape:
    """Encode ``queries`` random GET/SET queries into datagram payloads."""
    if queries < 1:
        raise ConfigurationError("need at least one query")
    rng = random.Random(shape.seed)
    keys = make_keys(shape)
    value = b"v" * shape.value_size
    # Response wire sizes against a prefilled store: GET hits return the
    # stored value, SETs return a bare STORED status.
    get_response = RESPONSE_HEADER_BYTES + shape.value_size
    set_response = RESPONSE_HEADER_BYTES
    payloads: list[bytes] = []
    counts: list[int] = []
    response_bytes: list[int] = []
    group: list[Query] = []
    size = 0
    reply = 0
    for _ in range(queries):
        key = keys[rng.randrange(shape.num_keys)]
        if rng.random() < shape.get_ratio:
            query = Query(QueryType.GET, key)
            answer = get_response
        else:
            query = Query(QueryType.SET, key, value)
            answer = set_response
        wire = query.wire_size
        if group and size + wire > max_payload:
            payloads.append(encode_queries(group))
            counts.append(len(group))
            response_bytes.append(reply)
            group, size, reply = [], 0, 0
        group.append(query)
        size += wire
        reply += answer
    if group:
        payloads.append(encode_queries(group))
        counts.append(len(group))
        response_bytes.append(reply)
    return RequestTape(
        payloads=payloads,
        counts=counts,
        total_queries=queries,
        response_bytes=response_bytes,
    )


def prefill(address: tuple[str, int], shape: WorkloadShape, batch: int = 512) -> int:
    """SET every key of the keyspace so GETs during the run mostly hit."""
    from repro.client import DidoClient

    keys = make_keys(shape)
    value = b"v" * shape.value_size
    stored = 0
    with DidoClient(address, timeout_s=5.0) as client:
        for start in range(0, len(keys), batch):
            group = [
                Query(QueryType.SET, key, value)
                for key in keys[start : start + batch]
            ]
            stored += len(client.execute(group))
    return stored


def count_responses(payload: bytes) -> int:
    """Messages in one response datagram, by walking the headers only."""
    count = 0
    offset = 0
    end = len(payload)
    while offset + RESPONSE_HEADER_BYTES <= end:
        value_len = int.from_bytes(
            payload[offset + 1 : offset + RESPONSE_HEADER_BYTES], "little"
        )
        offset += RESPONSE_HEADER_BYTES + value_len
        count += 1
    return count


# ----------------------------------------------------------------- reports


@dataclass
class LoadgenReport:
    """Outcome of one load-generator run."""

    mode: str
    duration_s: float
    workers: int
    depth: int
    queries_sent: int
    responses_received: int
    timeouts: int
    latencies_ms: list[float] = field(default_factory=list, repr=False)

    @property
    def qps(self) -> float:
        """Answered queries per second (the throughput that matters)."""
        return self.responses_received / self.duration_s if self.duration_s else 0.0

    @property
    def offered_qps(self) -> float:
        return self.queries_sent / self.duration_s if self.duration_s else 0.0

    def latency_ms(self, quantile: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[rank]

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 4),
            "workers": self.workers,
            "depth": self.depth,
            "queries_sent": self.queries_sent,
            "responses_received": self.responses_received,
            "timeouts": self.timeouts,
            "qps": round(self.qps, 1),
            "offered_qps": round(self.offered_qps, 1),
            "latency_p50_ms": round(self.latency_ms(0.50), 3),
            "latency_p95_ms": round(self.latency_ms(0.95), 3),
            "latency_p99_ms": round(self.latency_ms(0.99), 3),
        }

    def __str__(self) -> str:
        return (
            f"{self.mode}: {self.qps:,.0f} qps "
            f"({self.responses_received:,}/{self.queries_sent:,} answered in "
            f"{self.duration_s:.2f}s, {self.workers} workers x depth {self.depth}, "
            f"p50 {self.latency_ms(0.5):.2f}ms p99 {self.latency_ms(0.99):.2f}ms, "
            f"{self.timeouts} timeouts)"
        )


# ------------------------------------------------------------ closed loop


def _closed_worker(
    address: tuple[str, int],
    tape: RequestTape,
    depth: int,
    stop_at: float,
    timeout_s: float,
    out: dict,
) -> None:
    sock = _make_socket(timeout_s)
    sent = received = timeouts = 0
    latencies: list[float] = []
    cursor = 0
    num_payloads = len(tape.payloads)
    # Tapes built by build_tape know the exact response volume of every
    # datagram (prefilled store), so the wait can count received bytes —
    # one len() per response datagram instead of a header walk per
    # response, which matters when client and server share cores.
    by_bytes = len(tape.response_bytes) == num_payloads
    try:
        while time.monotonic() < stop_at:
            expected = 0
            expected_bytes = 0
            t0 = time.perf_counter()
            for _ in range(depth):
                sock.sendto(tape.payloads[cursor], address)
                expected += tape.counts[cursor]
                if by_bytes:
                    expected_bytes += tape.response_bytes[cursor]
                cursor = (cursor + 1) % num_payloads
            sent += expected
            if by_bytes:
                got_bytes = 0
                while got_bytes < expected_bytes:
                    try:
                        payload = sock.recv(MAX_DATAGRAM)
                    except socket.timeout:
                        timeouts += 1
                        break  # window lost (UDP); move on
                    got_bytes += len(payload)
                if got_bytes >= expected_bytes:
                    received += expected
                    latencies.append((time.perf_counter() - t0) * 1e3)
                else:
                    # Pro-rate the partial window (responses are not
                    # individually identifiable without a header walk).
                    received += expected * got_bytes // max(1, expected_bytes)
                continue
            got = 0
            while got < expected:
                try:
                    payload = sock.recv(MAX_DATAGRAM)
                except socket.timeout:
                    timeouts += 1
                    break  # window lost (UDP); move on
                got += count_responses(payload)
            received += got
            if got >= expected:
                latencies.append((time.perf_counter() - t0) * 1e3)
    finally:
        sock.close()
    out["sent"] = sent
    out["received"] = received
    out["timeouts"] = timeouts
    out["latencies"] = latencies


def run_closed_loop(
    address: tuple[str, int],
    tape: RequestTape,
    *,
    workers: int = 2,
    depth: int = 4,
    duration_s: float = 2.0,
    timeout_s: float = 2.0,
) -> LoadgenReport:
    """Drive ``workers`` closed loops, each ``depth`` datagrams in flight."""
    if workers < 1 or depth < 1:
        raise ConfigurationError("workers and depth must be positive")
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    outs: list[dict] = [{} for _ in range(workers)]
    start = time.monotonic()
    stop_at = start + duration_s
    threads = [
        threading.Thread(
            target=_closed_worker,
            args=(address, tape, depth, stop_at, timeout_s, out),
            daemon=True,
        )
        for out in outs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - start
    latencies: list[float] = []
    for out in outs:
        latencies.extend(out.get("latencies", ()))
    return LoadgenReport(
        mode="closed",
        duration_s=elapsed,
        workers=workers,
        depth=depth,
        queries_sent=sum(out.get("sent", 0) for out in outs),
        responses_received=sum(out.get("received", 0) for out in outs),
        timeouts=sum(out.get("timeouts", 0) for out in outs),
        latencies_ms=latencies,
    )


# -------------------------------------------------------------- open loop


def run_open_loop(
    address: tuple[str, int],
    tape: RequestTape,
    *,
    rate_qps: float = 100_000.0,
    duration_s: float = 2.0,
    drain_s: float = 0.25,
) -> LoadgenReport:
    """Offer ``rate_qps`` regardless of responses; count what comes back.

    One socket: the sender paces request datagrams on it while a receiver
    thread counts response messages, then a short drain window collects
    stragglers after the last send.
    """
    if rate_qps <= 0 or duration_s <= 0:
        raise ConfigurationError("rate and duration must be positive")
    sock = _make_socket(0.05)
    received = 0
    receiving = threading.Event()
    receiving.set()

    def _receiver() -> None:
        nonlocal received
        while receiving.is_set():
            try:
                payload = sock.recv(MAX_DATAGRAM)
            except socket.timeout:
                continue
            except OSError:
                return
            received += count_responses(payload)

    receiver = threading.Thread(target=_receiver, daemon=True)
    receiver.start()
    sent = 0
    cursor = 0
    num_payloads = len(tape.payloads)
    start = time.monotonic()
    stop_at = start + duration_s
    try:
        while True:
            now = time.monotonic()
            if now >= stop_at:
                break
            # Send whatever the pacing schedule says is due by now.
            due = int((now - start) * rate_qps)
            while sent < due:
                sock.sendto(tape.payloads[cursor], address)
                sent += tape.counts[cursor]
                cursor = (cursor + 1) % num_payloads
            time.sleep(0.001)
        time.sleep(drain_s)
    finally:
        elapsed = time.monotonic() - start
        receiving.clear()
        receiver.join(timeout=1.0)
        sock.close()
    return LoadgenReport(
        mode="open",
        duration_s=elapsed,
        workers=1,
        depth=1,
        queries_sent=sent,
        responses_received=received,
        timeouts=0,
    )


# -------------------------------------------------------------- front door


def run_loadgen(
    address: tuple[str, int],
    shape: WorkloadShape,
    *,
    mode: str = "closed",
    queries: int = 65536,
    workers: int = 2,
    depth: int = 4,
    duration_s: float = 2.0,
    rate_qps: float = 100_000.0,
    timeout_s: float = 2.0,
    do_prefill: bool = True,
    max_payload: int = MAX_SEND_PAYLOAD,
) -> LoadgenReport:
    """Prefill, build the request tape, and run the chosen discipline."""
    if mode not in ("closed", "open"):
        raise ConfigurationError(f"mode must be 'closed' or 'open', not {mode!r}")
    if do_prefill:
        prefill(address, shape)
    tape = build_tape(shape, queries, max_payload=max_payload)
    if mode == "closed":
        return run_closed_loop(
            address,
            tape,
            workers=workers,
            depth=depth,
            duration_s=duration_s,
            timeout_s=timeout_s,
        )
    return run_open_loop(
        address, tape, rate_qps=rate_qps, duration_s=duration_s
    )
