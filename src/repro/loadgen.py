"""Pipelined load generator for the UDP server (``repro loadgen``).

A :class:`~repro.client.DidoClient` is a correctness tool: one batch in
flight, responses decoded into objects.  Measuring the server's wire plane
needs the opposite — datagrams pre-encoded once and replayed, several
windows in flight, and responses *counted* (header-walked) rather than
decoded — so the generator saturates the server instead of itself.

Two driving disciplines:

* **closed loop** — each worker keeps ``depth`` request datagrams in
  flight on its own socket, waits for the responses to its window, then
  immediately sends the next; measures sustainable throughput plus
  per-window latency percentiles.
* **open loop** — a sender paces datagrams at a target queries/second
  regardless of responses while a receiver thread counts what comes back;
  measures behaviour under offered load (the paper's client machines).

Both report a :class:`LoadgenReport`; the CLI prints it or dumps JSON for
the benchmark harness (``benchmarks/bench_wire_end_to_end.py``).
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.kv.protocol import Query, QueryType, encode_queries
from repro.net.wire import RESPONSE_HEADER_BYTES
from repro.server import MAX_DATAGRAM

#: Keep request datagrams comfortably below the receive-buffer bound
#: (matches :data:`repro.client._MAX_SEND_PAYLOAD`).
MAX_SEND_PAYLOAD = 48 * 1024

#: Receive-buffer request for load-generator sockets.  Response bursts for
#: a deep window arrive faster than a worker thread drains them; the
#: kernel default (a few hundred KiB) drops datagrams under that burst and
#: every drop stalls a closed-loop window for its full timeout.
_RCVBUF_BYTES = 1 << 21


def _make_socket(timeout_s: float) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, _RCVBUF_BYTES)
    except OSError:  # pragma: no cover - platform refuses; defaults apply
        pass
    sock.settimeout(timeout_s)
    return sock


# --------------------------------------------------------------- workloads


@dataclass(frozen=True)
class WorkloadShape:
    """What the generated queries look like."""

    num_keys: int = 2048
    key_size: int = 16
    value_size: int = 64
    get_ratio: float = 0.95
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise ConfigurationError("need at least one key")
        if not 1 <= self.key_size <= 0xFFFF:
            raise ConfigurationError("key size must fit the u16 header field")
        if not 0 <= self.value_size <= 0xFFFFFFFF:
            raise ConfigurationError("value size must fit the u32 header field")
        if not 0.0 <= self.get_ratio <= 1.0:
            raise ConfigurationError("get ratio must be within [0, 1]")


def make_keys(shape: WorkloadShape) -> list[bytes]:
    """The deterministic keyspace for ``shape`` (used by prefill too)."""
    width = max(1, shape.key_size)
    return [
        (b"%08d" % i).rjust(width, b"k")[:width] for i in range(shape.num_keys)
    ]


@dataclass
class RequestTape:
    """Pre-encoded request datagrams, replayed verbatim by every worker.

    ``payloads[i]`` holds ``counts[i]`` encoded queries and the whole tape
    carries ``total_queries``; encoding happens once, so the measured loop
    is sendto/recv only.  ``response_bytes[i]`` is the exact response
    volume datagram ``i`` produces against a prefilled store (every GET
    hits, every SET stores): the closed loop counts received *bytes*
    against it instead of walking response headers, keeping the client
    out of the measurement on shared CPUs.
    """

    payloads: list[bytes]
    counts: list[int]
    total_queries: int
    response_bytes: list[int] = field(default_factory=list)


def build_tape(
    shape: WorkloadShape,
    queries: int,
    max_payload: int = MAX_SEND_PAYLOAD,
) -> RequestTape:
    """Encode ``queries`` random GET/SET queries into datagram payloads."""
    if queries < 1:
        raise ConfigurationError("need at least one query")
    rng = random.Random(shape.seed)
    keys = make_keys(shape)
    value = b"v" * shape.value_size
    # Response wire sizes against a prefilled store: GET hits return the
    # stored value, SETs return a bare STORED status.
    get_response = RESPONSE_HEADER_BYTES + shape.value_size
    set_response = RESPONSE_HEADER_BYTES
    payloads: list[bytes] = []
    counts: list[int] = []
    response_bytes: list[int] = []
    group: list[Query] = []
    size = 0
    reply = 0
    for _ in range(queries):
        key = keys[rng.randrange(shape.num_keys)]
        if rng.random() < shape.get_ratio:
            query = Query(QueryType.GET, key)
            answer = get_response
        else:
            query = Query(QueryType.SET, key, value)
            answer = set_response
        wire = query.wire_size
        if group and size + wire > max_payload:
            payloads.append(encode_queries(group))
            counts.append(len(group))
            response_bytes.append(reply)
            group, size, reply = [], 0, 0
        group.append(query)
        size += wire
        reply += answer
    if group:
        payloads.append(encode_queries(group))
        counts.append(len(group))
        response_bytes.append(reply)
    return RequestTape(
        payloads=payloads,
        counts=counts,
        total_queries=queries,
        response_bytes=response_bytes,
    )


def prefill(address: tuple[str, int], shape: WorkloadShape, batch: int = 512) -> int:
    """SET every key of the keyspace so GETs during the run mostly hit."""
    from repro.client import DidoClient

    keys = make_keys(shape)
    value = b"v" * shape.value_size
    stored = 0
    with DidoClient(address, timeout_s=5.0) as client:
        for start in range(0, len(keys), batch):
            group = [
                Query(QueryType.SET, key, value)
                for key in keys[start : start + batch]
            ]
            stored += len(client.execute(group))
    return stored


def count_responses(payload: bytes) -> int:
    """Messages in one response datagram, by walking the headers only."""
    count = 0
    offset = 0
    end = len(payload)
    while offset + RESPONSE_HEADER_BYTES <= end:
        value_len = int.from_bytes(
            payload[offset + 1 : offset + RESPONSE_HEADER_BYTES], "little"
        )
        offset += RESPONSE_HEADER_BYTES + value_len
        count += 1
    return count


#: Wire value of :attr:`repro.kv.protocol.ResponseStatus.WRONG_NODE`.
_WRONG_NODE_STATUS = 5


def count_responses_and_redirects(payload: bytes) -> tuple[int, int]:
    """Like :func:`count_responses`, also counting ``WRONG_NODE`` statuses.

    Cluster loops use this instead of byte counting: a redirect response
    has a different size than the real answer, so only a header walk can
    both credit the window and surface the redirect rate.
    """
    count = 0
    redirects = 0
    offset = 0
    end = len(payload)
    while offset + RESPONSE_HEADER_BYTES <= end:
        if payload[offset] == _WRONG_NODE_STATUS:
            redirects += 1
        value_len = int.from_bytes(
            payload[offset + 1 : offset + RESPONSE_HEADER_BYTES], "little"
        )
        offset += RESPONSE_HEADER_BYTES + value_len
        count += 1
    return count, redirects


# ----------------------------------------------------------------- reports


@dataclass
class LoadgenReport:
    """Outcome of one load-generator run."""

    mode: str
    duration_s: float
    workers: int
    depth: int
    queries_sent: int
    responses_received: int
    timeouts: int
    latencies_ms: list[float] = field(default_factory=list, repr=False)
    #: ``WRONG_NODE`` responses observed (cluster runs; 0 single-node).
    redirects: int = 0
    #: Client-side retry rounds (cluster client flows; 0 for blind loops).
    retries: int = 0

    @property
    def qps(self) -> float:
        """Answered queries per second (the throughput that matters)."""
        return self.responses_received / self.duration_s if self.duration_s else 0.0

    @property
    def offered_qps(self) -> float:
        return self.queries_sent / self.duration_s if self.duration_s else 0.0

    def latency_ms(self, quantile: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1, int(quantile * len(ordered)))
        return ordered[rank]

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 4),
            "workers": self.workers,
            "depth": self.depth,
            "queries_sent": self.queries_sent,
            "responses_received": self.responses_received,
            "timeouts": self.timeouts,
            "qps": round(self.qps, 1),
            "offered_qps": round(self.offered_qps, 1),
            "latency_p50_ms": round(self.latency_ms(0.50), 3),
            "latency_p95_ms": round(self.latency_ms(0.95), 3),
            "latency_p99_ms": round(self.latency_ms(0.99), 3),
            "redirects": self.redirects,
            "retries": self.retries,
        }

    def __str__(self) -> str:
        return (
            f"{self.mode}: {self.qps:,.0f} qps "
            f"({self.responses_received:,}/{self.queries_sent:,} answered in "
            f"{self.duration_s:.2f}s, {self.workers} workers x depth {self.depth}, "
            f"p50 {self.latency_ms(0.5):.2f}ms p99 {self.latency_ms(0.99):.2f}ms, "
            f"{self.timeouts} timeouts, {self.redirects} redirects, "
            f"{self.retries} retries)"
        )


# ------------------------------------------------------------ closed loop


def _closed_worker(
    address: tuple[str, int],
    tape: RequestTape,
    depth: int,
    stop_at: float,
    timeout_s: float,
    out: dict,
) -> None:
    sock = _make_socket(timeout_s)
    sent = received = timeouts = redirects = 0
    latencies: list[float] = []
    cursor = 0
    num_payloads = len(tape.payloads)
    # Tapes built by build_tape know the exact response volume of every
    # datagram (prefilled store), so the wait can count received bytes —
    # one len() per response datagram instead of a header walk per
    # response, which matters when client and server share cores.
    by_bytes = len(tape.response_bytes) == num_payloads
    try:
        while time.monotonic() < stop_at:
            expected = 0
            expected_bytes = 0
            t0 = time.perf_counter()
            for _ in range(depth):
                sock.sendto(tape.payloads[cursor], address)
                expected += tape.counts[cursor]
                if by_bytes:
                    expected_bytes += tape.response_bytes[cursor]
                cursor = (cursor + 1) % num_payloads
            sent += expected
            if by_bytes:
                got_bytes = 0
                while got_bytes < expected_bytes:
                    try:
                        payload = sock.recv(MAX_DATAGRAM)
                    except socket.timeout:
                        timeouts += 1
                        break  # window lost (UDP); move on
                    got_bytes += len(payload)
                if got_bytes >= expected_bytes:
                    received += expected
                    latencies.append((time.perf_counter() - t0) * 1e3)
                else:
                    # Pro-rate the partial window (responses are not
                    # individually identifiable without a header walk).
                    received += expected * got_bytes // max(1, expected_bytes)
                continue
            got = 0
            while got < expected:
                try:
                    payload = sock.recv(MAX_DATAGRAM)
                except socket.timeout:
                    timeouts += 1
                    break  # window lost (UDP); move on
                messages, redirected = count_responses_and_redirects(payload)
                got += messages
                redirects += redirected
            received += got
            if got >= expected:
                latencies.append((time.perf_counter() - t0) * 1e3)
    finally:
        sock.close()
    out["sent"] = sent
    out["received"] = received
    out["timeouts"] = timeouts
    out["redirects"] = redirects
    out["latencies"] = latencies


def run_closed_loop(
    address: tuple[str, int],
    tape: RequestTape,
    *,
    workers: int = 2,
    depth: int = 4,
    duration_s: float = 2.0,
    timeout_s: float = 2.0,
) -> LoadgenReport:
    """Drive ``workers`` closed loops, each ``depth`` datagrams in flight."""
    if workers < 1 or depth < 1:
        raise ConfigurationError("workers and depth must be positive")
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    outs: list[dict] = [{} for _ in range(workers)]
    start = time.monotonic()
    stop_at = start + duration_s
    threads = [
        threading.Thread(
            target=_closed_worker,
            args=(address, tape, depth, stop_at, timeout_s, out),
            daemon=True,
        )
        for out in outs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - start
    latencies: list[float] = []
    for out in outs:
        latencies.extend(out.get("latencies", ()))
    return LoadgenReport(
        mode="closed",
        duration_s=elapsed,
        workers=workers,
        depth=depth,
        queries_sent=sum(out.get("sent", 0) for out in outs),
        responses_received=sum(out.get("received", 0) for out in outs),
        timeouts=sum(out.get("timeouts", 0) for out in outs),
        redirects=sum(out.get("redirects", 0) for out in outs),
        latencies_ms=latencies,
    )


# -------------------------------------------------------------- open loop


def run_open_loop(
    address: tuple[str, int],
    tape: RequestTape,
    *,
    rate_qps: float = 100_000.0,
    duration_s: float = 2.0,
    drain_s: float = 0.25,
    probe_payload: bytes | None = None,
    probe_interval_s: float = 0.005,
) -> LoadgenReport:
    """Offer ``rate_qps`` regardless of responses; count what comes back.

    One socket: the sender paces request datagrams on it while a receiver
    thread counts response messages, then a short drain window collects
    stragglers after the last send.  When ``probe_payload`` is given (a
    single encoded query), a prober thread round-trips it on its own
    socket every ``probe_interval_s`` so the report carries latency
    percentiles *under the offered load* — the open loop itself never
    matches responses to sends, so it cannot time them.
    """
    if rate_qps <= 0 or duration_s <= 0:
        raise ConfigurationError("rate and duration must be positive")
    sock = _make_socket(0.05)
    received = 0
    redirects = 0
    receiving = threading.Event()
    receiving.set()

    def _receiver() -> None:
        nonlocal received, redirects
        while receiving.is_set():
            try:
                payload = sock.recv(MAX_DATAGRAM)
            except socket.timeout:
                continue
            except OSError:
                return
            messages, redirected = count_responses_and_redirects(payload)
            received += messages
            redirects += redirected

    receiver = threading.Thread(target=_receiver, daemon=True)
    receiver.start()
    probe_latencies: list[float] = []
    prober: threading.Thread | None = None
    if probe_payload is not None:
        def _prober() -> None:
            probe_sock = _make_socket(0.25)
            try:
                while receiving.is_set():
                    t0 = time.perf_counter()
                    try:
                        probe_sock.sendto(probe_payload, address)
                        probe_sock.recv(MAX_DATAGRAM)
                    except socket.timeout:
                        continue
                    except OSError:
                        return
                    probe_latencies.append((time.perf_counter() - t0) * 1e3)
                    time.sleep(probe_interval_s)
            finally:
                probe_sock.close()

        prober = threading.Thread(target=_prober, daemon=True)
        prober.start()
    sent = 0
    cursor = 0
    num_payloads = len(tape.payloads)
    start = time.monotonic()
    stop_at = start + duration_s
    try:
        while True:
            now = time.monotonic()
            if now >= stop_at:
                break
            # Send whatever the pacing schedule says is due by now.
            due = int((now - start) * rate_qps)
            while sent < due:
                sock.sendto(tape.payloads[cursor], address)
                sent += tape.counts[cursor]
                cursor = (cursor + 1) % num_payloads
            time.sleep(0.001)
        time.sleep(drain_s)
    finally:
        elapsed = time.monotonic() - start
        receiving.clear()
        receiver.join(timeout=1.0)
        if prober is not None:
            prober.join(timeout=1.0)
        sock.close()
    return LoadgenReport(
        mode="open",
        duration_s=elapsed,
        workers=1,
        depth=1,
        queries_sent=sent,
        responses_received=received,
        timeouts=0,
        redirects=redirects,
        latencies_ms=probe_latencies,
    )


# ----------------------------------------------------------------- cluster


def build_cluster_tapes(
    shape: WorkloadShape,
    queries: int,
    manifest,
    max_payload: int = MAX_SEND_PAYLOAD,
) -> dict[str, RequestTape]:
    """Hash-split the deterministic request tape across the fleet.

    Generates the *same* query sequence as :func:`build_tape` (same shape,
    same seed), routes every query to its owner under ``manifest``, and
    packs one per-node tape preserving the per-node order.  The union of
    the per-node tapes equals the single-node tape's query multiset, which
    is what lets the cluster bench compare merged responses byte-for-byte
    against a single-node replay.

    Per-node tapes carry no ``response_bytes``: a cluster window can
    contain ``WRONG_NODE`` redirects (whose size differs from the real
    answer), so cluster loops must header-walk responses.
    """
    from repro.cluster.manifest import ManifestRouter

    if queries < 1:
        raise ConfigurationError("need at least one query")
    rng = random.Random(shape.seed)
    keys = make_keys(shape)
    value = b"v" * shape.value_size
    sequence: list[Query] = []
    for _ in range(queries):
        key = keys[rng.randrange(shape.num_keys)]
        if rng.random() < shape.get_ratio:
            sequence.append(Query(QueryType.GET, key))
        else:
            sequence.append(Query(QueryType.SET, key, value))
    router = ManifestRouter(manifest)
    owners = router.owners_for([query.key for query in sequence])
    per_node: dict[str, list[Query]] = {name: [] for name in router.names}
    for query, owner in zip(sequence, owners):
        per_node[owner].append(query)

    tapes: dict[str, RequestTape] = {}
    for name, node_queries in per_node.items():
        if not node_queries:
            continue
        payloads: list[bytes] = []
        counts: list[int] = []
        group: list[Query] = []
        size = 0
        for query in node_queries:
            wire = query.wire_size
            if group and size + wire > max_payload:
                payloads.append(encode_queries(group))
                counts.append(len(group))
                group, size = [], 0
            group.append(query)
            size += wire
        if group:
            payloads.append(encode_queries(group))
            counts.append(len(group))
        tapes[name] = RequestTape(
            payloads=payloads, counts=counts, total_queries=len(node_queries)
        )
    return tapes


def cluster_prefill(manifest, shape: WorkloadShape, batch: int = 512) -> int:
    """SET the whole keyspace through the manifest-routed client."""
    from repro.client import ClusterClient

    keys = make_keys(shape)
    value = b"v" * shape.value_size
    stored = 0
    with ClusterClient(manifest, timeout_s=5.0) as client:
        for start in range(0, len(keys), batch):
            group = [
                Query(QueryType.SET, key, value)
                for key in keys[start : start + batch]
            ]
            stored += len(client.execute(group))
    return stored


@dataclass
class ClusterLoadgenReport:
    """Aggregate plus per-node breakdown of one cluster run."""

    mode: str
    duration_s: float
    per_node: dict[str, LoadgenReport]
    retries: int = 0

    @property
    def queries_sent(self) -> int:
        return sum(r.queries_sent for r in self.per_node.values())

    @property
    def responses_received(self) -> int:
        return sum(r.responses_received for r in self.per_node.values())

    @property
    def redirects(self) -> int:
        return sum(r.redirects for r in self.per_node.values())

    @property
    def timeouts(self) -> int:
        return sum(r.timeouts for r in self.per_node.values())

    @property
    def qps(self) -> float:
        return self.responses_received / self.duration_s if self.duration_s else 0.0

    def latency_ms(self, quantile: float) -> float:
        merged: list[float] = []
        for report in self.per_node.values():
            merged.extend(report.latencies_ms)
        if not merged:
            return 0.0
        merged.sort()
        rank = min(len(merged) - 1, int(quantile * len(merged)))
        return merged[rank]

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "nodes": len(self.per_node),
            "duration_s": round(self.duration_s, 4),
            "queries_sent": self.queries_sent,
            "responses_received": self.responses_received,
            "qps": round(self.qps, 1),
            "latency_p50_ms": round(self.latency_ms(0.50), 3),
            "latency_p95_ms": round(self.latency_ms(0.95), 3),
            "latency_p99_ms": round(self.latency_ms(0.99), 3),
            "timeouts": self.timeouts,
            "redirects": self.redirects,
            "retries": self.retries,
            "per_node": {
                name: report.to_dict() for name, report in sorted(self.per_node.items())
            },
        }

    def __str__(self) -> str:
        lines = [
            f"cluster-{self.mode}: {self.qps:,.0f} qps across "
            f"{len(self.per_node)} nodes "
            f"({self.responses_received:,}/{self.queries_sent:,} answered in "
            f"{self.duration_s:.2f}s, p50 {self.latency_ms(0.5):.2f}ms "
            f"p99 {self.latency_ms(0.99):.2f}ms, {self.timeouts} timeouts, "
            f"{self.redirects} redirects, {self.retries} retries)"
        ]
        for name, report in sorted(self.per_node.items()):
            lines.append(
                f"  {name}: {report.qps:,.0f} qps, "
                f"p50 {report.latency_ms(0.5):.2f}ms "
                f"p99 {report.latency_ms(0.99):.2f}ms, "
                f"{report.redirects} redirects"
            )
        return "\n".join(lines)


def run_cluster_closed_loop(
    manifest,
    tapes: dict[str, RequestTape],
    *,
    workers: int = 1,
    depth: int = 4,
    duration_s: float = 2.0,
    timeout_s: float = 2.0,
) -> ClusterLoadgenReport:
    """Drive every node's tape concurrently, ``workers`` loops per node."""
    if workers < 1 or depth < 1:
        raise ConfigurationError("workers and depth must be positive")
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    jobs: list[tuple[str, tuple[str, int], RequestTape, dict]] = []
    for name, tape in sorted(tapes.items()):
        address = manifest.nodes[name].address
        for _ in range(workers):
            jobs.append((name, address, tape, {}))
    start = time.monotonic()
    stop_at = start + duration_s
    threads = [
        threading.Thread(
            target=_closed_worker,
            args=(address, tape, depth, stop_at, timeout_s, out),
            daemon=True,
        )
        for _, address, tape, out in jobs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - start
    per_node: dict[str, LoadgenReport] = {}
    for name, _, _, _ in jobs:
        if name in per_node:
            continue
        outs = [out for job_name, _, _, out in jobs if job_name == name]
        latencies: list[float] = []
        for out in outs:
            latencies.extend(out.get("latencies", ()))
        per_node[name] = LoadgenReport(
            mode="closed",
            duration_s=elapsed,
            workers=workers,
            depth=depth,
            queries_sent=sum(out.get("sent", 0) for out in outs),
            responses_received=sum(out.get("received", 0) for out in outs),
            timeouts=sum(out.get("timeouts", 0) for out in outs),
            redirects=sum(out.get("redirects", 0) for out in outs),
            latencies_ms=latencies,
        )
    return ClusterLoadgenReport(mode="closed", duration_s=elapsed, per_node=per_node)


def _probe_payloads(shape: WorkloadShape, manifest) -> dict[str, bytes]:
    """One single-GET probe datagram per node, keyed by a key it owns."""
    from repro.cluster.manifest import ManifestRouter

    router = ManifestRouter(manifest)
    keys = make_keys(shape)
    owners = router.owners_for(keys)
    probes: dict[str, bytes] = {}
    for key, owner in zip(keys, owners):
        if owner not in probes:
            probes[owner] = encode_queries([Query(QueryType.GET, key)])
        if len(probes) == len(router.names):
            break
    return probes


def run_cluster_open_loop(
    manifest,
    tapes: dict[str, RequestTape],
    shape: WorkloadShape,
    *,
    rate_qps: float = 100_000.0,
    duration_s: float = 2.0,
) -> ClusterLoadgenReport:
    """Open loop against every node at once, rate split by key ownership.

    Each node gets a sender/receiver pair pacing its share of the offered
    rate (proportional to its tape's query count) plus a latency prober,
    so the report breaks QPS *and* p99 down per node under load.
    """
    if rate_qps <= 0 or duration_s <= 0:
        raise ConfigurationError("rate and duration must be positive")
    total = sum(tape.total_queries for tape in tapes.values())
    probes = _probe_payloads(shape, manifest)
    per_node: dict[str, LoadgenReport] = {}
    lock = threading.Lock()

    def run_node(name: str, tape: RequestTape) -> None:
        share = tape.total_queries / total if total else 0.0
        report = run_open_loop(
            manifest.nodes[name].address,
            tape,
            rate_qps=max(1.0, rate_qps * share),
            duration_s=duration_s,
            probe_payload=probes.get(name),
        )
        with lock:
            per_node[name] = report

    threads = [
        threading.Thread(target=run_node, args=(name, tape), daemon=True)
        for name, tape in sorted(tapes.items())
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - start
    return ClusterLoadgenReport(mode="open", duration_s=elapsed, per_node=per_node)


def run_cluster_loadgen(
    control_address: tuple[str, int],
    shape: WorkloadShape,
    *,
    mode: str = "closed",
    queries: int = 65536,
    workers: int = 1,
    depth: int = 4,
    duration_s: float = 2.0,
    rate_qps: float = 100_000.0,
    timeout_s: float = 2.0,
    do_prefill: bool = True,
    max_payload: int = MAX_SEND_PAYLOAD,
) -> ClusterLoadgenReport:
    """Fetch the manifest, prefill through the routed client, and drive
    the whole fleet concurrently over the columnar wire."""
    from repro.cluster.serving import fetch_manifest

    if mode not in ("closed", "open"):
        raise ConfigurationError(f"mode must be 'closed' or 'open', not {mode!r}")
    manifest = fetch_manifest(control_address)
    prefill_retries = 0
    if do_prefill:
        from repro.client import ClusterClient

        with ClusterClient(manifest, timeout_s=5.0) as client:
            keys = make_keys(shape)
            value = b"v" * shape.value_size
            for start in range(0, len(keys), 512):
                client.execute(
                    [Query(QueryType.SET, k, value) for k in keys[start : start + 512]]
                )
            prefill_retries = client.stats.retries
            manifest = client.manifest  # pick up any newer epoch seen
    tapes = build_cluster_tapes(shape, queries, manifest, max_payload=max_payload)
    if mode == "closed":
        report = run_cluster_closed_loop(
            manifest,
            tapes,
            workers=workers,
            depth=depth,
            duration_s=duration_s,
            timeout_s=timeout_s,
        )
    else:
        report = run_cluster_open_loop(
            manifest, tapes, shape, rate_qps=rate_qps, duration_s=duration_s
        )
    report.retries += prefill_retries
    return report


# -------------------------------------------------------------- front door


def run_loadgen(
    address: tuple[str, int],
    shape: WorkloadShape,
    *,
    mode: str = "closed",
    queries: int = 65536,
    workers: int = 2,
    depth: int = 4,
    duration_s: float = 2.0,
    rate_qps: float = 100_000.0,
    timeout_s: float = 2.0,
    do_prefill: bool = True,
    max_payload: int = MAX_SEND_PAYLOAD,
) -> LoadgenReport:
    """Prefill, build the request tape, and run the chosen discipline."""
    if mode not in ("closed", "open"):
        raise ConfigurationError(f"mode must be 'closed' or 'open', not {mode!r}")
    if do_prefill:
        prefill(address, shape)
    tape = build_tape(shape, queries, max_payload=max_payload)
    if mode == "closed":
        return run_closed_loop(
            address,
            tape,
            workers=workers,
            depth=depth,
            duration_s=duration_s,
            timeout_s=timeout_s,
        )
    return run_open_loop(
        address, tape, rate_qps=rate_qps, duration_s=duration_s
    )
