"""Exception hierarchy for the DIDO reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid pipeline, hardware, or system configuration was supplied."""


class CapacityError(ReproError):
    """A data structure ran out of capacity and could not recover.

    Raised, for example, when the cuckoo hash table cannot place an item
    even after the maximum number of displacement ("kick") attempts, or when
    the slab allocator has no evictable object of a suitable class.
    """


class ProtocolError(ReproError):
    """A wire-format message could not be parsed or encoded."""


class WorkloadError(ReproError):
    """A workload specification or generator was invalid."""


class SimulationError(ReproError):
    """The pipeline simulator reached an inconsistent state."""


class TelemetryError(ReproError):
    """A telemetry instrument, event, or exporter was misused."""
