"""Analytic latency distribution under periodical scheduling.

The paper reports average latency bounds ("always limited within 1,000
microseconds"); this helper derives the full per-query latency distribution
implied by the batching discipline, so users can reason about tail latency
too:

* batches are issued every period ``P = Tmax``;
* batch assembly overlaps the previous batch's processing, so a query
  waits uniformly on ``[0, 2/3 P)`` before its batch launches (mean
  ``P/3`` — the scheduler's assembly fraction);
* the batch then traverses ``m`` stages, each occupying one period.

Hence per-query latency is uniform on ``[m P, (m + 2/3) P)`` — the mean is
``(m + 1/3) P``, matching the budget rule the batch sizer enforces, and any
percentile is linear in the period.  Work stealing shortens ``P`` and
therefore every percentile; deeper pipelines trade throughput (larger
aggregate batches) against traversal latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost_model import PipelineEstimate
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LatencyProfile:
    """Per-query latency distribution for one steady-state operating point."""

    period_us: float
    stages: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    worst_us: float

    #: Width of the assembly-wait window in periods (2 x the scheduler's
    #: assembly fraction, so the mean wait matches it).
    ASSEMBLY_WINDOW = 2.0 / 3.0

    def percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0-100)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError("percentile must be within [0, 100]")
        return (self.stages + self.ASSEMBLY_WINDOW * q / 100.0) * self.period_us


def latency_profile(estimate: PipelineEstimate) -> LatencyProfile:
    """Latency distribution implied by a pipeline estimate."""
    period_us = estimate.tmax_ns / 1000.0
    stages = estimate.config.num_stages
    window = LatencyProfile.ASSEMBLY_WINDOW
    return LatencyProfile(
        period_us=period_us,
        stages=stages,
        mean_us=(stages + window / 2.0) * period_us,
        p50_us=(stages + window * 0.50) * period_us,
        p95_us=(stages + window * 0.95) * period_us,
        p99_us=(stages + window * 0.99) * period_us,
        worst_us=(stages + window) * period_us,
    )
