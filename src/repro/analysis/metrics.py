"""Derived metrics used across the evaluation (paper Section V).

All inputs are plain numbers so these helpers are trivially testable and
reusable by both the benchmark harness and ad-hoc scripts.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def speedup(new_mops: float, baseline_mops: float) -> float:
    """Throughput ratio ``new / baseline`` (1.0 = parity)."""
    if baseline_mops <= 0:
        raise ConfigurationError("baseline throughput must be positive")
    return new_mops / baseline_mops


def improvement_pct(new_mops: float, baseline_mops: float) -> float:
    """Relative improvement in percent (the paper's "% faster")."""
    return (speedup(new_mops, baseline_mops) - 1.0) * 100.0


def error_rate(measured: float, estimated: float) -> float:
    """Cost-model error rate, paper Section V-B:
    ``(T_DIDO - T_Model) / T_DIDO`` where both are throughputs."""
    if measured <= 0:
        raise ConfigurationError("measured throughput must be positive")
    if estimated <= 0:
        raise ConfigurationError("estimated throughput must be positive")
    return (measured - estimated) / measured


def price_performance_kops_per_usd(throughput_mops: float, price_usd: float) -> float:
    """KOPS per dollar (paper Figure 17)."""
    if price_usd <= 0:
        raise ConfigurationError("price must be positive")
    return throughput_mops * 1000.0 / price_usd


def energy_efficiency_kops_per_watt(throughput_mops: float, tdp_watts: float) -> float:
    """KOPS per watt of TDP (paper Figure 18's back-of-envelope metric)."""
    if tdp_watts <= 0:
        raise ConfigurationError("TDP must be positive")
    return throughput_mops * 1000.0 / tdp_watts
