"""One function per paper figure: the experiment harness.

Each ``figNN_*`` function runs the corresponding experiment of the paper's
Section V and returns structured rows; the benchmark suite times and prints
them, and ``tools/make_experiments_md.py`` renders EXPERIMENTS.md from the
same source, so the repository's claims and its benchmarks can never drift
apart.

All functions are deterministic (the simulator is analytic and the
generators are seeded).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import (
    energy_efficiency_kops_per_watt,
    error_rate,
    price_performance_kops_per_usd,
)
from repro.core.config_search import ConfigurationSearch, enumerate_configs
from repro.core.controller import AdaptationController
from repro.core.cost_model import CostModel, PipelineEstimate
from repro.core.profiler import WorkloadProfile
from repro.core.tasks import IndexOp
from repro.hardware.specs import APU_A10_7850K, DISCRETE_MEGAKV, PlatformSpec
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.megakv import (
    megakv_coupled_config,
    megakv_discrete_config,
    megakv_executor,
)
from repro.core.pipeline_config import PipelineConfig
from repro.workloads.dynamic import AlternatingWorkload
from repro.workloads.ycsb import STANDARD_WORKLOADS, WorkloadSpec, standard_workload

#: The paper's default latency budget (Section V-A).
LATENCY_BUDGET_NS = 1_000_000.0

#: Mega-KV (Discrete) is compared on the 12 workloads shared with the
#: original Mega-KV paper (Section V-E: no 50 % GET, no K32).
DISCRETE_COMPARISON_LABELS = (
    "K8-G100-U", "K8-G95-U", "K8-G100-S", "K8-G95-S",
    "K16-G100-U", "K16-G95-U", "K16-G100-S", "K16-G95-S",
    "K128-G100-U", "K128-G95-U", "K128-G100-S", "K128-G95-S",
)


@dataclass
class Harness:
    """Shared executors/searchers so repeated figures reuse warm objects."""

    platform: PlatformSpec = APU_A10_7850K
    latency_budget_ns: float = LATENCY_BUDGET_NS

    def __post_init__(self) -> None:
        self.executor = PipelineExecutor(self.platform)
        self.megakv_exec = megakv_executor(self.platform)
        self.cost_model = CostModel(self.platform)
        self.planner = ConfigurationSearch(self.cost_model)
        self.oracle = ConfigurationSearch(self.executor)
        self._dido_cache: dict[str, tuple[PipelineConfig, PipelineEstimate]] = {}

    # ------------------------------------------------------------- helpers

    def profile(self, spec: WorkloadSpec) -> WorkloadProfile:
        return WorkloadProfile.from_spec(spec)

    def megakv_measure(self, spec: WorkloadSpec):
        """Mega-KV (Coupled) measurement (static pipeline, port overhead)."""
        return self.megakv_exec.measure(
            megakv_coupled_config(self.platform.cpu.cores),
            self.profile(spec),
            self.latency_budget_ns,
        )

    def dido_plan(self, spec: WorkloadSpec) -> tuple[PipelineConfig, PipelineEstimate]:
        """DIDO's cost-model-chosen configuration and its estimate (cached)."""
        key = spec.label
        if key not in self._dido_cache:
            best = self.planner.best(self.profile(spec), self.latency_budget_ns)
            self._dido_cache[key] = (best.config, best.estimate)
        return self._dido_cache[key]

    def dido_measure(self, spec: WorkloadSpec):
        """Measured performance of DIDO's chosen configuration."""
        config, _ = self.dido_plan(spec)
        return self.executor.measure(config, self.profile(spec), self.latency_budget_ns)


# --------------------------------------------------------------- Figure 4/5


@dataclass
class StageTimeRow:
    dataset: str
    np_us: float
    in_us: float
    rsv_us: float
    gpu_utilization: float
    cpu_utilization: float
    batch: int


def fig04_stage_times(harness: Harness | None = None) -> list[StageTimeRow]:
    """Figure 4 (+5): Mega-KV (Coupled) per-stage times and utilisation.

    Workloads: the four datasets at 95 % GET, Zipf 0.99 — the setup of the
    paper's Figure 4 caption.
    """
    h = harness or Harness()
    rows = []
    for name in ("K8", "K16", "K32", "K128"):
        spec = standard_workload(f"{name}-G95-S")
        m = h.megakv_measure(spec)
        times = m.estimate.stage_times_us
        rows.append(
            StageTimeRow(
                dataset=name,
                np_us=times[0],
                in_us=times[1],
                rsv_us=times[2],
                gpu_utilization=m.gpu_utilization,
                cpu_utilization=m.cpu_utilization,
                batch=m.batch_size,
            )
        )
    return rows


# ----------------------------------------------------------------- Figure 6


@dataclass
class IndexOpShareRow:
    insert_batch: int
    search_share: float
    insert_share: float
    delete_share: float


def fig06_index_op_shares(harness: Harness | None = None) -> list[IndexOpShareRow]:
    """Figure 6: share of GPU time per index operation vs Insert batch size.

    95 % GET / 5 % SET: an insert batch of ``n`` implies ``n`` deletes and
    ``19 n`` searches.  The paper's claim: although Insert+Delete are <10 %
    of operations, they consume 35-56 % of GPU execution time.
    """
    h = harness or Harness()
    from repro.hardware.processor import gpu_task_time_ns

    model = h.executor.task_model
    gpu = h.platform.gpu
    rows = []
    for inserts in (1000, 2000, 3000, 4000, 5000):
        searches = inserts * 19
        t = {}
        for op, count in ((IndexOp.SEARCH, searches), (IndexOp.INSERT, inserts), (IndexOp.DELETE, inserts)):
            demand = model.index_demand(op, count, search_buckets=1.77, insert_buckets=2.36)
            t[op] = gpu_task_time_ns(
                gpu, count, demand.instructions, demand.pattern, atomic=demand.atomic
            )
        total = sum(t.values())
        rows.append(
            IndexOpShareRow(
                insert_batch=inserts,
                search_share=t[IndexOp.SEARCH] / total,
                insert_share=t[IndexOp.INSERT] / total,
                delete_share=t[IndexOp.DELETE] / total,
            )
        )
    return rows


# ----------------------------------------------------------------- Figure 9


@dataclass
class ErrorRateRow:
    workload: str
    estimated_mops: float
    measured_mops: float
    error: float


def fig09_cost_model_error(harness: Harness | None = None) -> list[ErrorRateRow]:
    """Figure 9: cost-model error rate over the 24 standard workloads.

    ``error = (T_DIDO - T_Model) / T_DIDO`` with T_DIDO the measured
    throughput of DIDO's chosen configuration.
    """
    h = harness or Harness()
    rows = []
    for spec in STANDARD_WORKLOADS:
        config, estimate = h.dido_plan(spec)
        measured = h.dido_measure(spec)
        rows.append(
            ErrorRateRow(
                workload=spec.label,
                estimated_mops=estimate.throughput_mops,
                measured_mops=measured.throughput_mops,
                error=error_rate(measured.throughput_mops, estimate.throughput_mops),
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 10


@dataclass
class OptimalityRow:
    workload: str
    dido_mops: float
    optimal_mops: float
    worst_mops: float
    dido_config: str
    optimal_config: str

    @property
    def mismatch(self) -> bool:
        return self.dido_config != self.optimal_config

    @property
    def optimal_gap(self) -> float:
        return self.optimal_mops / self.dido_mops


def fig10_optimality(harness: Harness | None = None) -> list[OptimalityRow]:
    """Figure 10: DIDO's choice vs the exhaustively measured optimum.

    Every configuration is measured with the detailed simulator; the row
    records DIDO's measured throughput, the true optimum, and the worst
    configuration (the paper's error bars span best..worst normalised to
    DIDO).
    """
    h = harness or Harness()
    rows = []
    for spec in STANDARD_WORKLOADS:
        profile = h.profile(spec)
        config, _ = h.dido_plan(spec)
        measured = h.executor.measure(config, profile, h.latency_budget_ns)
        ranked = h.oracle.rank(profile, h.latency_budget_ns)
        rows.append(
            OptimalityRow(
                workload=spec.label,
                dido_mops=measured.throughput_mops,
                optimal_mops=ranked[0].throughput_mops,
                worst_mops=ranked[-1].throughput_mops,
                dido_config=config.label,
                optimal_config=ranked[0].config.label,
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 11


@dataclass
class SpeedupRow:
    workload: str
    baseline_mops: float
    dido_mops: float
    dido_config: str

    @property
    def speedup(self) -> float:
        return self.dido_mops / self.baseline_mops


def fig11_throughput(harness: Harness | None = None) -> list[SpeedupRow]:
    """Figure 11: DIDO over Mega-KV (Coupled) on all 24 workloads."""
    h = harness or Harness()
    rows = []
    for spec in STANDARD_WORKLOADS:
        base = h.megakv_measure(spec)
        dido = h.dido_measure(spec)
        config, _ = h.dido_plan(spec)
        rows.append(
            SpeedupRow(
                workload=spec.label,
                baseline_mops=base.throughput_mops,
                dido_mops=dido.throughput_mops,
                dido_config=config.label,
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 12


@dataclass
class UtilizationRow:
    workload: str
    dido_gpu: float
    megakv_gpu: float
    dido_cpu: float
    megakv_cpu: float


def fig12_utilization(harness: Harness | None = None) -> list[UtilizationRow]:
    """Figure 12: CPU and GPU utilisation, DIDO vs Mega-KV (Coupled)."""
    h = harness or Harness()
    rows = []
    for name in ("K8", "K16", "K32", "K128"):
        spec = standard_workload(f"{name}-G95-S")
        base = h.megakv_measure(spec)
        dido = h.dido_measure(spec)
        rows.append(
            UtilizationRow(
                workload=spec.label,
                dido_gpu=dido.gpu_utilization,
                megakv_gpu=base.gpu_utilization,
                dido_cpu=dido.cpu_utilization,
                megakv_cpu=base.cpu_utilization,
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 13


@dataclass
class TechniqueRow:
    workload: str
    baseline_mops: float
    technique_mops: float
    detail: str = ""

    @property
    def speedup(self) -> float:
        return self.technique_mops / self.baseline_mops


def fig13_flexible_index(harness: Harness | None = None) -> list[TechniqueRow]:
    """Figure 13: flexible index-operation assignment, pipeline fixed.

    Partitioning pinned to Mega-KV's; baseline = all index ops on the GPU;
    technique = the best of the four Insert/Delete placements.  G95 and G50
    workloads, no work stealing (isolating the one technique).
    """
    h = harness or Harness()
    fixed = megakv_coupled_config(h.platform.cpu.cores)
    policies = enumerate_configs(
        h.platform.cpu.cores, work_stealing=False, fixed_pipeline=fixed
    )
    baseline_config = fixed.with_work_stealing(False)
    rows = []
    for spec in STANDARD_WORKLOADS:
        if spec.get_ratio not in (0.95, 0.50):
            continue
        profile = h.profile(spec)
        base = h.executor.measure(baseline_config, profile, h.latency_budget_ns)
        best = max(
            (h.executor.measure(c, profile, h.latency_budget_ns) for c in policies),
            key=lambda m: m.throughput_mops,
        )
        rows.append(
            TechniqueRow(
                workload=spec.label,
                baseline_mops=base.throughput_mops,
                technique_mops=best.throughput_mops,
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 14


def fig14_dynamic_pipeline(harness: Harness | None = None) -> list[TechniqueRow]:
    """Figure 14: dynamic pipeline partitioning for the workloads where
    DIDO's plan differs from Mega-KV's partitioning.

    Baseline = Mega-KV's partitioning with the best index policy (so the
    delta is attributable to repartitioning alone); both sides without work
    stealing.
    """
    h = harness or Harness()
    fixed = megakv_coupled_config(h.platform.cpu.cores)
    policies = enumerate_configs(
        h.platform.cpu.cores, work_stealing=False, fixed_pipeline=fixed
    )
    rows = []
    for spec in STANDARD_WORKLOADS:
        profile = h.profile(spec)
        planned = h.planner.best(
            profile, h.latency_budget_ns, work_stealing=False
        ).config
        same_partition = tuple(s.tasks for s in planned.stages) == tuple(
            s.tasks for s in fixed.stages
        )
        if same_partition:
            continue
        base = max(
            (h.executor.measure(c, profile, h.latency_budget_ns) for c in policies),
            key=lambda m: m.throughput_mops,
        )
        dyn = h.executor.measure(planned, profile, h.latency_budget_ns)
        rows.append(
            TechniqueRow(
                workload=spec.label,
                baseline_mops=base.throughput_mops,
                technique_mops=dyn.throughput_mops,
                detail=planned.label,
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 15


def fig15_work_stealing(harness: Harness | None = None) -> list[TechniqueRow]:
    """Figure 15: work stealing on top of DIDO's chosen configuration.

    Baseline = the configuration the planner picks when stealing is off;
    technique = the same configuration with stealing enabled (the paper
    applies stealing after the other two techniques are configured).
    """
    h = harness or Harness()
    rows = []
    for spec in STANDARD_WORKLOADS:
        profile = h.profile(spec)
        best_no_steal = h.planner.best(
            profile, h.latency_budget_ns, work_stealing=False
        )
        base = h.executor.measure(
            best_no_steal.config, profile, h.latency_budget_ns
        )
        stealing = h.executor.measure(
            best_no_steal.config.with_work_stealing(True), profile, h.latency_budget_ns
        )
        rows.append(
            TechniqueRow(
                workload=spec.label,
                baseline_mops=base.throughput_mops,
                technique_mops=stealing.throughput_mops,
            )
        )
    return rows


# ------------------------------------------------------------ Figures 16-18


@dataclass
class PlatformComparisonRow:
    workload: str
    dido_mops: float
    megakv_discrete_mops: float
    megakv_coupled_mops: float

    def price_performance(self) -> tuple[float, float]:
        """(DIDO, Mega-KV discrete) in KOPS/USD."""
        return (
            price_performance_kops_per_usd(self.dido_mops, APU_A10_7850K.price_usd),
            price_performance_kops_per_usd(
                self.megakv_discrete_mops, DISCRETE_MEGAKV.price_usd
            ),
        )

    def energy_efficiency(self) -> tuple[float, float]:
        """(DIDO, Mega-KV discrete) in KOPS/W."""
        return (
            energy_efficiency_kops_per_watt(self.dido_mops, APU_A10_7850K.tdp_watts),
            energy_efficiency_kops_per_watt(
                self.megakv_discrete_mops, DISCRETE_MEGAKV.tdp_watts
            ),
        )


def fig16_discrete_comparison(harness: Harness | None = None) -> list[PlatformComparisonRow]:
    """Figures 16-18: DIDO (APU) vs Mega-KV (Discrete) on 12 workloads.

    Section V-E omits network I/O for these comparisons; we keep the NIC
    cost model (it is small) and compare throughputs directly — the paper's
    conclusions are about ratios across an order-of-magnitude gap.
    """
    h = harness or Harness()
    discrete_exec = megakv_executor(DISCRETE_MEGAKV)
    discrete_cfg = megakv_discrete_config(DISCRETE_MEGAKV.cpu.cores)
    rows = []
    for label in DISCRETE_COMPARISON_LABELS:
        spec = standard_workload(label)
        profile = h.profile(spec)
        dido = h.dido_measure(spec)
        coupled = h.megakv_measure(spec)
        discrete = discrete_exec.measure(discrete_cfg, profile, h.latency_budget_ns)
        rows.append(
            PlatformComparisonRow(
                workload=label,
                dido_mops=dido.throughput_mops,
                megakv_discrete_mops=discrete.throughput_mops,
                megakv_coupled_mops=coupled.throughput_mops,
            )
        )
    return rows


# ---------------------------------------------------------------- Figure 19


@dataclass
class LatencyRow:
    workload: str
    latency_us: float
    baseline_mops: float
    dido_mops: float

    @property
    def improvement(self) -> float:
        return self.dido_mops / self.baseline_mops - 1.0


def fig19_latency_budgets(harness: Harness | None = None) -> list[LatencyRow]:
    """Figure 19: DIDO's improvement at 600/800/1000 us latency budgets."""
    h = harness or Harness()
    rows = []
    for label in ("K8-G50-U", "K16-G100-S", "K32-G95-S", "K32-G50-U"):
        spec = standard_workload(label)
        profile = h.profile(spec)
        for latency_us in (600.0, 800.0, 1000.0):
            budget = latency_us * 1000.0
            base = h.megakv_exec.measure(
                megakv_coupled_config(h.platform.cpu.cores), profile, budget
            )
            best = h.planner.best(profile, budget)
            dido = h.executor.measure(best.config, profile, budget)
            rows.append(
                LatencyRow(
                    workload=label,
                    latency_us=latency_us,
                    baseline_mops=base.throughput_mops,
                    dido_mops=dido.throughput_mops,
                )
            )
    return rows


# ------------------------------------------------------------ Figures 20-21


@dataclass
class AdaptationTimeline:
    times_ms: list[float]
    throughput_mops: list[float]
    configs: list[str]
    replans: int


def fig20_adaptation_timeline(
    harness: Harness | None = None,
    cycle_ms: float = 6.0,
    duration_ms: float = 15.0,
) -> AdaptationTimeline:
    """Figure 20: throughput under alternating K8-G50-U / K16-G95-S traffic.

    The schedule switches every ``cycle_ms / 2`` (the paper alternates every
    3 ms).  The controller sees each batch's profile and re-plans on the
    >10 % change; in-flight batches run under the old configuration, so the
    throughput dips and recovers within about a millisecond.
    """
    h = harness or Harness()
    spec_a = standard_workload("K8-G50-U")
    spec_b = standard_workload("K16-G95-S")
    workload = AlternatingWorkload(
        spec_a, spec_b, cycle_ns=cycle_ms * 1e6, num_keys=100_000
    )
    controller = AdaptationController(h.platform, h.latency_budget_ns)

    def schedule(now_ns: float):
        spec = workload.spec_at(now_ns)
        profile = WorkloadProfile.from_spec(spec)
        # One-batch apply delay: the batch assembled now still runs under
        # the previously planned configuration (pipeline info is embedded
        # per batch); the profile observed now shapes the *next* plan.
        previous = controller.current_config
        planned = controller.config_for(profile)
        return (previous or planned), profile

    points = h.executor.run_timeline(
        schedule, duration_ns=duration_ms * 1e6, sample_every_ns=300_000.0
    )
    return AdaptationTimeline(
        times_ms=[p.time_ns / 1e6 for p in points],
        throughput_mops=[p.throughput_mops for p in points],
        configs=[p.config_label for p in points],
        replans=controller.replan_count,
    )


@dataclass
class FluctuationRow:
    cycle_ms: float
    dido_mops: float
    megakv_mops: float

    @property
    def speedup(self) -> float:
        return self.dido_mops / self.megakv_mops


def fig21_fluctuation(
    harness: Harness | None = None,
    cycles_ms: tuple[float, ...] = (2, 4, 8, 16, 32, 64, 128, 256),
) -> list[FluctuationRow]:
    """Figure 21: speedup vs workload alternate cycle (2-256 ms).

    Shorter cycles waste more time in the ~1 ms re-adaptation window, so the
    speedup over static Mega-KV grows with the cycle length and saturates.
    """
    h = harness or Harness()
    spec_a = standard_workload("K8-G50-U")
    spec_b = standard_workload("K16-G95-S")
    mk_cfg = megakv_coupled_config(h.platform.cpu.cores)
    rows = []
    for cycle_ms in cycles_ms:
        duration_ns = max(4.0, 2 * cycle_ms) * 1e6
        workload = AlternatingWorkload(
            spec_a, spec_b, cycle_ns=cycle_ms * 1e6, num_keys=100_000
        )
        controller = AdaptationController(h.platform, h.latency_budget_ns)

        def dido_schedule(now_ns: float):
            spec = workload.spec_at(now_ns)
            profile = WorkloadProfile.from_spec(spec)
            previous = controller.current_config
            planned = controller.config_for(profile)
            return (previous or planned), profile

        def megakv_schedule(now_ns: float):
            spec = workload.spec_at(now_ns)
            return mk_cfg, WorkloadProfile.from_spec(spec)

        dido_points = h.executor.run_timeline(dido_schedule, duration_ns)
        mk_points = h.megakv_exec.run_timeline(megakv_schedule, duration_ns)
        dido_avg = sum(p.throughput_mops for p in dido_points) / len(dido_points)
        mk_avg = sum(p.throughput_mops for p in mk_points) / len(mk_points)
        rows.append(
            FluctuationRow(cycle_ms=cycle_ms, dido_mops=dido_avg, megakv_mops=mk_avg)
        )
    return rows
