"""Analysis helpers: metrics, paper-style reporting, and the figure harness.

* :mod:`repro.analysis.metrics` — derived metrics (speedups, error rates,
  price-performance, energy efficiency);
* :mod:`repro.analysis.reporting` — fixed-width tables matching the rows the
  paper's figures plot;
* :mod:`repro.analysis.experiments` — one function per paper figure, shared
  by the benchmark suite and EXPERIMENTS.md generation.
"""

from repro.analysis.metrics import (
    energy_efficiency_kops_per_watt,
    error_rate,
    price_performance_kops_per_usd,
    speedup,
)
from repro.analysis.reporting import Table, format_row

__all__ = [
    "Table",
    "energy_efficiency_kops_per_watt",
    "error_rate",
    "format_row",
    "price_performance_kops_per_usd",
    "speedup",
]
