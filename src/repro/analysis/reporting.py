"""Fixed-width table rendering for benchmark output.

The benchmark harness prints one table per paper figure; these helpers keep
the formatting consistent and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    """One row with right-padded cells (floats rendered to 3 significant-ish
    decimals, everything else via ``str``)."""
    parts = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            text = f"{cell:.3f}"
        else:
            text = str(cell)
        parts.append(text.ljust(width))
    return "  ".join(parts).rstrip()


@dataclass
class Table:
    """A printable fixed-width table with a title (one per figure)."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def _widths(self) -> list[int]:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                text = f"{cell:.3f}" if isinstance(cell, float) else str(cell)
                widths[i] = max(widths[i], len(text))
        return widths

    def render(self) -> str:
        widths = self._widths()
        lines = [self.title, "=" * len(self.title)]
        lines.append(format_row(self.columns, widths))
        lines.append(format_row(["-" * w for w in widths], widths))
        for row in self.rows:
            lines.append(format_row(row, widths))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table (benchmarks call this so ``pytest -s`` shows it)."""
        print()
        print(self.render())
