"""Execution-time models for CPU cores and GPU compute units.

Implements the per-task half of the paper's Equation 1,

``T^XPU_F = N x (I^XPU_F / IPC^XPU + N^M_F L^XPU_M + N^C_F L^XPU_C)``

specialised by processor kind:

* **CPU** — ``N`` queries are divided across the cores allocated to the
  stage; each core executes sequentially at peak IPC with its memory-level
  parallelism overlapping independent misses.
* **GPU** — the batch is spread over all SIMT lanes, but small batches leave
  most of the device idle.  We model occupancy with a saturating efficiency
  curve ``eff(N) = N / (N + N_sat)`` plus a fixed kernel-launch overhead,
  which reproduces the paper's Figure 6 observation (a 5 % Insert/Delete
  share of operations consuming 35–56 % of GPU time) and the low GPU
  utilisation of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.memory import AccessPattern, access_cost_ns
from repro.hardware.specs import ProcessorKind, ProcessorSpec


#: DRAM cost of a per-thread sequential line relative to a random line on
#: the GPU.  One SIMT thread walking one object byte-by-byte is the classic
#: *uncoalesced* pattern: consecutive lines of the same object are fetched
#: by the same lane in separate transactions, so they cost nearly as much
#: as random lines (this is why the paper finds the GPU "low efficient for
#: reading or writing large size data", Section V-D3).
_SEQUENTIAL_LINE_COST = 1.0

#: Bus-traffic multiplier for atomic compare-exchange operations: an atomic
#: is a read-modify-write (two bus crossings) plus contention retries.
_ATOMIC_BUS_FACTOR = 1.6


@dataclass(frozen=True)
class ComputeThroughput:
    """Summary of one task execution: time plus the memory traffic generated.

    ``memory_accesses`` is the total random-access count for the whole
    batch, which the interference model consumes to compute ``mu``.
    """

    time_ns: float
    memory_accesses: float


def cpu_task_time_ns(
    proc: ProcessorSpec,
    batch: int,
    instructions: float,
    pattern: AccessPattern,
    *,
    cores: int,
    interference: float = 1.0,
) -> float:
    """Execution time of a batch on ``cores`` CPU cores.

    ``instructions`` and ``pattern`` are per-query figures; the batch is
    split evenly across the allocated cores.
    """
    if proc.kind is not ProcessorKind.CPU:
        raise ConfigurationError("cpu_task_time_ns needs a CPU spec")
    if cores <= 0:
        raise ConfigurationError("a CPU stage needs at least one core")
    if batch <= 0:
        return 0.0
    per_query_ns = proc.instruction_time_ns(instructions) + access_cost_ns(
        pattern, proc, interference=interference
    )
    return batch * per_query_ns / min(cores, proc.cores)


def gpu_batch_efficiency(proc: ProcessorSpec, batch: int) -> float:
    """Occupancy efficiency of the GPU for a batch of ``batch`` queries.

    Saturating curve in ``(0, 1)``: half efficiency at ``saturation_batch``.
    A batch must also fill whole wavefronts, so tiny batches are rounded up
    to one wavefront of work.
    """
    if proc.kind is not ProcessorKind.GPU:
        raise ConfigurationError("gpu_batch_efficiency needs a GPU spec")
    if batch <= 0:
        return 0.0
    return batch / (batch + proc.saturation_batch)


def gpu_task_time_ns(
    proc: ProcessorSpec,
    batch: int,
    instructions: float,
    pattern: AccessPattern,
    *,
    interference: float = 1.0,
    atomic: bool = False,
) -> float:
    """Execution time of one GPU kernel over a batch.

    The whole-device service rate is ``total_lanes x eff(batch)`` queries in
    flight; the per-query latency is divided by that effective parallelism
    and a fixed kernel-launch overhead is added.  ``atomic`` applies the
    spec's serialisation penalty (Insert/Delete use compare-exchange).
    """
    if proc.kind is not ProcessorKind.GPU:
        raise ConfigurationError("gpu_task_time_ns needs a GPU spec")
    if batch <= 0:
        return 0.0
    instr = instructions * (proc.atomic_penalty if atomic else 1.0)
    per_query_ns = proc.instruction_time_ns(instr) + access_cost_ns(
        pattern, proc, interference=interference
    )
    efficiency = gpu_batch_efficiency(proc, batch)
    effective_lanes = proc.total_lanes * efficiency
    lane_bound_ns = batch * per_query_ns / effective_lanes
    # A latency-hiding GPU is ultimately throughput-bound by the DRAM
    # service rate for scattered cache-line accesses; small batches cannot
    # generate enough outstanding misses to reach even that.
    bandwidth_bound_ns = 0.0
    if proc.random_access_bandwidth_gbs > 0:
        # The integrated GPU's cache is tiny, so "cache" accesses (the
        # sequential trailing lines of an object) are still DRAM traffic —
        # coalesced, hence cheaper than random lines, but not free.  This is
        # why the paper finds GPUs "low efficient for reading or writing
        # large size data" (Section V-D3).
        line_equivalents = pattern.memory_accesses + _SEQUENTIAL_LINE_COST * pattern.cache_accesses
        if atomic:
            line_equivalents *= _ATOMIC_BUS_FACTOR
        bytes_touched = batch * line_equivalents * proc.cache_line_bytes
        if bytes_touched > 0:
            bandwidth_bound_ns = (
                bytes_touched
                / (proc.random_access_bandwidth_gbs * efficiency)
                * interference
            )
    return proc.kernel_launch_ns + max(lane_bound_ns, bandwidth_bound_ns)


def task_time_ns(
    proc: ProcessorSpec,
    batch: int,
    instructions: float,
    pattern: AccessPattern,
    *,
    cores: int = 1,
    interference: float = 1.0,
    atomic: bool = False,
) -> float:
    """Dispatch to the CPU or GPU model based on ``proc.kind``."""
    if proc.kind is ProcessorKind.CPU:
        return cpu_task_time_ns(
            proc, batch, instructions, pattern, cores=cores, interference=interference
        )
    return gpu_task_time_ns(
        proc, batch, instructions, pattern, interference=interference, atomic=atomic
    )
