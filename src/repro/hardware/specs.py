"""Platform specifications for the coupled APU and the discrete baseline.

The numbers mirror the hardware the paper reports (Section V-A):

* **Coupled**: AMD A10-7850K Kaveri APU — four 3.7 GHz CPU cores plus eight
  GPU compute units of 64 shaders at 720 MHz, sharing 4x4 GB DDR3-1333
  through hUMA; 1,908 MB of that memory is CPU/GPU-shareable; TDP 95 W.
* **Discrete**: two Intel E5-2650 v2 CPUs and two Nvidia GTX 780 GPUs
  connected over PCIe 3.0 (the Mega-KV testbed).

Latency and bandwidth figures are public datasheet/measurement ballparks,
and the derived simulator is calibrated so that the *relationships* the
paper reports (stage times, utilisation, speedup ordering) hold; absolute
nanoseconds are not claims about the real silicon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class ProcessorKind(enum.Enum):
    """Which side of the heterogeneous platform a processor belongs to."""

    CPU = "cpu"
    GPU = "gpu"


@dataclass(frozen=True)
class ProcessorSpec:
    """A CPU socket group or a GPU, described at the level the cost model needs.

    Attributes
    ----------
    name:
        Human-readable model name.
    kind:
        :class:`ProcessorKind` — selects the execution-time model.
    cores:
        Physical CPU cores, or GPU compute units.
    lanes_per_core:
        SIMT width per compute unit (1 for CPU cores, 64 for GCN CUs).
    clock_ghz:
        Core clock in GHz.
    ipc:
        Peak instructions per cycle per lane (paper Table I, ``IPC^XPU``).
    mem_latency_ns:
        Effective latency of one random memory access as seen by one
        thread (``L^XPU_M``); for GPUs this is the raw latency *before*
        wavefront latency hiding, which :func:`gpu_task_time_ns` applies.
    cache_latency_ns:
        Latency of an L2 cache hit (``L^XPU_C``).
    cache_line_bytes:
        Cache line size (``C^XPU``), used to split object accesses into one
        memory access plus trailing cache-line accesses (Section IV-B).
    cache_size_bytes:
        Capacity of the last-level cache usable for hot key-value objects.
    mem_parallelism:
        Outstanding memory requests a single core can keep in flight
        (memory-level parallelism); divides the effective random-access
        latency for batched independent accesses.
    saturation_batch:
        GPU only — the batch size at which the device reaches half of its
        peak efficiency.  Models the paper's observation that "GPUs are
        extremely inefficient at handling small batches" (Section II-C2).
    kernel_launch_ns:
        GPU only — fixed per-kernel-launch overhead.
    atomic_penalty:
        Multiplier on instruction cost for atomic-heavy tasks (Insert and
        Delete use compare-exchange; Section III-B2).
    random_access_bandwidth_gbs:
        GPU only — effective DRAM bandwidth available to scattered
        cache-line-granularity accesses (0 = unbounded).  A latency-hiding
        GPU is throughput-bound by this, not by per-access latency: on the
        APU the integrated GPU shares low DDR3 bandwidth (the paper's
        Section II-A caveat), while discrete GDDR5 is an order of magnitude
        faster.
    """

    name: str
    kind: ProcessorKind
    cores: int
    lanes_per_core: int
    clock_ghz: float
    ipc: float
    mem_latency_ns: float
    cache_latency_ns: float
    cache_line_bytes: int
    cache_size_bytes: int
    mem_parallelism: float = 1.0
    saturation_batch: int = 0
    kernel_launch_ns: float = 0.0
    atomic_penalty: float = 1.0
    random_access_bandwidth_gbs: float = 0.0

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.lanes_per_core <= 0:
            raise ConfigurationError(f"{self.name}: core/lane counts must be positive")
        if self.clock_ghz <= 0 or self.ipc <= 0:
            raise ConfigurationError(f"{self.name}: clock and IPC must be positive")
        if self.kind is ProcessorKind.GPU and self.saturation_batch <= 0:
            raise ConfigurationError(f"{self.name}: a GPU needs saturation_batch > 0")

    @property
    def total_lanes(self) -> int:
        """Total hardware execution lanes (cores x SIMT width)."""
        return self.cores * self.lanes_per_core

    @property
    def cycle_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    def instruction_time_ns(self, instructions: float) -> float:
        """Time for ``instructions`` on a single lane at peak IPC."""
        return instructions / self.ipc * self.cycle_ns


@dataclass(frozen=True)
class PlatformSpec:
    """A complete evaluation platform: one CPU group, one GPU, shared memory.

    ``coupled`` distinguishes the APU (single address space, no explicit
    transfers, strong interference) from a discrete machine (separate
    memories joined by PCIe, negligible cross-interference).
    """

    name: str
    cpu: ProcessorSpec
    gpu: ProcessorSpec
    coupled: bool
    memory_bandwidth_gbs: float
    shared_memory_bytes: int
    price_usd: float
    tdp_watts: float
    pcie_bandwidth_gbs: float = 0.0
    pcie_latency_us: float = 0.0
    interference_strength: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu.kind is not ProcessorKind.CPU:
            raise ConfigurationError("PlatformSpec.cpu must be a CPU spec")
        if self.gpu.kind is not ProcessorKind.GPU:
            raise ConfigurationError("PlatformSpec.gpu must be a GPU spec")
        if not self.coupled and self.pcie_bandwidth_gbs <= 0:
            raise ConfigurationError("a discrete platform needs PCIe bandwidth")

    def processor(self, kind: ProcessorKind) -> ProcessorSpec:
        """Return the processor spec of the requested ``kind``."""
        return self.cpu if kind is ProcessorKind.CPU else self.gpu


#: CPU half of the A10-7850K: four Steamroller cores at 3.7 GHz.  The 4 MB
#: L2 is the only large cache and is what caches the Zipf hot set.
_APU_CPU = ProcessorSpec(
    name="A10-7850K CPU (4 cores @ 3.7 GHz)",
    kind=ProcessorKind.CPU,
    cores=4,
    lanes_per_core=1,
    clock_ghz=3.7,
    ipc=2.0,
    mem_latency_ns=78.0,
    cache_latency_ns=7.0,
    cache_line_bytes=64,
    cache_size_bytes=4 * 1024 * 1024,
    mem_parallelism=2.0,
)

#: GPU half of the A10-7850K: eight GCN compute units, 64 shaders each, at
#: 720 MHz.  No large cache; random accesses always hit DRAM, but wavefront
#: scheduling hides latency once the batch is large (``saturation_batch``).
_APU_GPU = ProcessorSpec(
    name="A10-7850K GPU (8 CUs @ 720 MHz)",
    kind=ProcessorKind.GPU,
    cores=8,
    lanes_per_core=64,
    clock_ghz=0.72,
    ipc=1.0,
    mem_latency_ns=220.0,
    cache_latency_ns=40.0,
    cache_line_bytes=64,
    cache_size_bytes=512 * 1024,
    mem_parallelism=1.0,
    saturation_batch=2500,
    kernel_launch_ns=9000.0,
    atomic_penalty=3.0,
    random_access_bandwidth_gbs=20.0,
)

#: The coupled platform used throughout the paper's evaluation.
APU_A10_7850K = PlatformSpec(
    name="AMD A10-7850K Kaveri APU",
    cpu=_APU_CPU,
    gpu=_APU_GPU,
    coupled=True,
    memory_bandwidth_gbs=21.3,  # dual-channel DDR3-1333
    shared_memory_bytes=1908 * 1024 * 1024,
    price_usd=173.0,
    tdp_watts=95.0,
    interference_strength=0.55,
)

#: Two E5-2650 v2 sockets (2 x 8 cores @ 2.6 GHz) of the Mega-KV testbed.
XEON_E5_2650V2_PAIR = ProcessorSpec(
    name="2x Intel E5-2650 v2 (16 cores @ 2.6 GHz)",
    kind=ProcessorKind.CPU,
    cores=16,
    lanes_per_core=1,
    clock_ghz=2.6,
    ipc=3.5,
    mem_latency_ns=75.0,
    cache_latency_ns=4.0,
    cache_line_bytes=64,
    cache_size_bytes=2 * 20 * 1024 * 1024,
    mem_parallelism=10.0,
)

#: Two GTX 780 cards: 2 x 12 SMX, modelled as wide 64-lane units at boost
#: clock, with high-bandwidth GDDR5 behind them.
GPU_GTX780_PAIR = ProcessorSpec(
    name="2x Nvidia GTX 780 (24 SMX @ 900 MHz)",
    kind=ProcessorKind.GPU,
    cores=24,
    lanes_per_core=64,
    clock_ghz=0.9,
    ipc=1.2,
    mem_latency_ns=40.0,
    cache_latency_ns=10.0,
    cache_line_bytes=128,
    cache_size_bytes=2 * 1536 * 1024,
    mem_parallelism=1.0,
    saturation_batch=9000,
    kernel_launch_ns=12000.0,
    atomic_penalty=2.0,
    random_access_bandwidth_gbs=190.0,
)

#: The discrete Mega-KV platform (paper Section V-E).  The paper notes the
#: processor price is ~25x the APU's.
DISCRETE_MEGAKV = PlatformSpec(
    name="Mega-KV discrete testbed (2x E5-2650v2 + 2x GTX780)",
    cpu=XEON_E5_2650V2_PAIR,
    gpu=GPU_GTX780_PAIR,
    coupled=False,
    memory_bandwidth_gbs=102.0,  # host DDR3 quad-channel x2 sockets
    shared_memory_bytes=64 * 1024 * 1024 * 1024,
    price_usd=173.0 * 25.0,
    tdp_watts=2 * 95.0 + 2 * 250.0,
    pcie_bandwidth_gbs=24.0,  # two cards, two x16 links
    pcie_latency_us=10.0,
    interference_strength=0.05,
)


def platform_by_name(name: str) -> PlatformSpec:
    """Look up a built-in platform by short name (``"apu"`` or ``"discrete"``)."""
    table = {"apu": APU_A10_7850K, "discrete": DISCRETE_MEGAKV}
    try:
        return table[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r}; expected one of {sorted(table)}"
        ) from None
