"""CPU/GPU shared-memory interference model (the paper's ``mu`` factor).

On a coupled architecture the CPU and the GPU contend for the same DRAM
channels, so running both concurrently slows each of them down — and the
GPU, being the heavier traffic source, hurts the CPU more than vice versa
(paper Section IV, citing Kayiran et al., MICRO-47).

The paper measures ``mu^XPU_{N_C, N_G}`` with a microbenchmark that issues
``N_C`` memory accesses from the CPU concurrently with ``N_G`` from the GPU.
We reproduce that shape analytically: each processor's latency inflates with
the *other* processor's share of total traffic, weighted by the platform's
``interference_strength`` and by how far combined demand pushes into the
available bandwidth.  A discrete platform has near-zero strength (separate
memories), so ``mu ~ 1`` there.

:func:`measure_interference` plays the role of the paper's microbenchmark:
it samples the model over a grid and returns an interpolating table, which
is what :class:`InterferenceModel` then serves — mirroring how the real
system would measure once and look up at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.specs import PlatformSpec, ProcessorKind

#: Asymmetry between directions: GPU traffic hurts the CPU roughly this much
#: more than CPU traffic hurts the GPU (the GPU tolerates latency by
#: switching wavefronts; the CPU stalls).
_CPU_SENSITIVITY = 1.0
_GPU_SENSITIVITY = 0.35


def _mu(
    own_accesses: float,
    other_accesses: float,
    strength: float,
    sensitivity: float,
    bandwidth_pressure: float,
) -> float:
    """Latency inflation factor for one side of the chip.

    ``bandwidth_pressure`` in [0, 1] scales the effect by how close combined
    traffic is to saturating DRAM; with no pressure there is no slowdown.
    """
    total = own_accesses + other_accesses
    if total <= 0.0 or other_accesses <= 0.0:
        return 1.0
    other_share = other_accesses / total
    return 1.0 + strength * sensitivity * other_share * bandwidth_pressure


@dataclass(frozen=True)
class InterferenceSample:
    """One microbenchmark grid point: traffic levels and measured factors."""

    cpu_accesses: float
    gpu_accesses: float
    mu_cpu: float
    mu_gpu: float


class InterferenceModel:
    """Serves ``mu`` factors for a platform, per paper Table I.

    The model is continuous, so it can be queried directly; the microbench
    table produced by :func:`measure_interference` exists to reproduce the
    paper's methodology and for inspection/testing.
    """

    #: Random accesses per second at which bandwidth pressure saturates.
    #: One random access moves one cache line (64 B); DRAM efficiency on
    #: scattered traffic is far below peak, so pressure builds early.
    _RANDOM_ACCESS_EFFICIENCY = 0.35

    def __init__(self, platform: PlatformSpec):
        self._platform = platform
        line = platform.cpu.cache_line_bytes
        peak = platform.memory_bandwidth_gbs * 1e9 * self._RANDOM_ACCESS_EFFICIENCY
        self._saturation_accesses_per_s = peak / line

    @property
    def platform(self) -> PlatformSpec:
        return self._platform

    def _pressure(self, cpu_rate: float, gpu_rate: float) -> float:
        """Bandwidth pressure in [0, 1] for given access rates (accesses/s)."""
        if self._saturation_accesses_per_s <= 0:
            return 0.0
        return min(1.0, (cpu_rate + gpu_rate) / self._saturation_accesses_per_s)

    def mu(
        self,
        kind: ProcessorKind,
        cpu_rate: float,
        gpu_rate: float,
    ) -> float:
        """``mu^XPU`` for concurrent access rates (random accesses per second).

        ``kind`` selects whose slowdown is being asked for.
        """
        if cpu_rate < 0 or gpu_rate < 0:
            raise ConfigurationError("access rates must be non-negative")
        pressure = self._pressure(cpu_rate, gpu_rate)
        strength = self._platform.interference_strength
        if kind is ProcessorKind.CPU:
            return _mu(cpu_rate, gpu_rate, strength, _CPU_SENSITIVITY, pressure)
        return _mu(gpu_rate, cpu_rate, strength, _GPU_SENSITIVITY, pressure)


def measure_interference(
    platform: PlatformSpec,
    rates: tuple[float, ...] = (0.0, 2e7, 5e7, 1e8, 2e8, 4e8),
) -> list[InterferenceSample]:
    """Run the interference microbenchmark over a grid of access rates.

    Returns one :class:`InterferenceSample` per (CPU rate, GPU rate) pair,
    the same table the paper builds offline and consults at runtime.
    """
    model = InterferenceModel(platform)
    samples = []
    for cpu_rate in rates:
        for gpu_rate in rates:
            samples.append(
                InterferenceSample(
                    cpu_accesses=cpu_rate,
                    gpu_accesses=gpu_rate,
                    mu_cpu=model.mu(ProcessorKind.CPU, cpu_rate, gpu_rate),
                    mu_gpu=model.mu(ProcessorKind.GPU, cpu_rate, gpu_rate),
                )
            )
    return samples
