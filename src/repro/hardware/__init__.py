"""Hardware substrate: analytical models of coupled and discrete CPU-GPU platforms.

The paper evaluates DIDO on an AMD A10-7850K Kaveri APU (four CPU cores and
eight GPU compute units sharing DDR3 memory through hUMA) and compares
against Mega-KV on a discrete dual-Xeon / dual-GTX780 testbed.  Neither
platform is available here, so this package models them analytically:

* :mod:`repro.hardware.specs` — frozen dataclasses describing each platform
  (clock rates, core counts, latencies, bandwidth, price, TDP);
* :mod:`repro.hardware.processor` — per-task execution-time models for CPU
  cores and GPU compute units, including the GPU's small-batch inefficiency;
* :mod:`repro.hardware.memory` — cache/memory access-cost model with
  prefetch and hot-set (Zipf) caching effects;
* :mod:`repro.hardware.interference` — the CPU/GPU shared-memory
  interference factor ``mu`` and the microbenchmark that measures it;
* :mod:`repro.hardware.pcie` — PCIe transfer model for the discrete
  baseline.

Every quantity DIDO's cost model consumes (paper Section IV) is produced by
these modules, so the adaptation mechanics are exercised end to end.
"""

from repro.hardware.interference import InterferenceModel, measure_interference
from repro.hardware.memory import MemorySystem, access_cost_ns, object_access_pattern
from repro.hardware.pcie import PCIeLink
from repro.hardware.processor import (
    ComputeThroughput,
    cpu_task_time_ns,
    gpu_batch_efficiency,
    gpu_task_time_ns,
)
from repro.hardware.specs import (
    APU_A10_7850K,
    DISCRETE_MEGAKV,
    GPU_GTX780_PAIR,
    XEON_E5_2650V2_PAIR,
    PlatformSpec,
    ProcessorKind,
    ProcessorSpec,
)

__all__ = [
    "APU_A10_7850K",
    "DISCRETE_MEGAKV",
    "GPU_GTX780_PAIR",
    "XEON_E5_2650V2_PAIR",
    "ComputeThroughput",
    "InterferenceModel",
    "MemorySystem",
    "PCIeLink",
    "PlatformSpec",
    "ProcessorKind",
    "ProcessorSpec",
    "access_cost_ns",
    "cpu_task_time_ns",
    "gpu_batch_efficiency",
    "gpu_task_time_ns",
    "measure_interference",
    "object_access_pattern",
]
