"""PCIe transfer model for the discrete Mega-KV baseline.

On a discrete platform every GPU-side pipeline stage pays to ship its input
batch to device memory and its results back over PCIe (the paper's central
motivation for *static* pipelines on discrete hardware).  The coupled APU
pays nothing — ``PCIeLink.transfer_ns`` on a coupled platform is zero by
construction so the same executor code runs on both.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hardware.specs import PlatformSpec


class PCIeLink:
    """One direction of a PCIe transfer (latency + bandwidth model)."""

    def __init__(self, platform: PlatformSpec):
        self._coupled = platform.coupled
        self._bandwidth_bytes_ns = platform.pcie_bandwidth_gbs  # GB/s == bytes/ns
        self._latency_ns = platform.pcie_latency_us * 1000.0

    @property
    def coupled(self) -> bool:
        """True when the platform shares memory and transfers are free."""
        return self._coupled

    def transfer_ns(self, payload_bytes: float) -> float:
        """Time to move ``payload_bytes`` across the link (one direction).

        Zero on a coupled platform.  On a discrete platform the DMA setup
        latency is paid once per transfer regardless of size.
        """
        if payload_bytes < 0:
            raise ConfigurationError("payload size must be non-negative")
        if self._coupled or payload_bytes == 0:
            return 0.0
        return self._latency_ns + payload_bytes / self._bandwidth_bytes_ns

    def round_trip_ns(self, to_device_bytes: float, from_device_bytes: float) -> float:
        """Input upload plus result download for one GPU kernel invocation."""
        return self.transfer_ns(to_device_bytes) + self.transfer_ns(from_device_bytes)
