"""Cache/memory access-cost model shared by the cost model and the simulator.

The paper (Section IV-B) estimates the cost of touching a key-value object
of size ``L`` as one random memory access plus ``ceil(L / C) - 1`` cache-line
accesses, because hardware prefetchers turn the trailing sequential lines
into cache hits.  Two workload factors modulate this:

* **task affinity** — if the preceding task on the *same* pipeline stage
  already pulled the object into cache (e.g. KC before RD), the leading
  random access also becomes a cache access;
* **key popularity** — under a Zipf-skewed key distribution the hot set fits
  in the CPU cache; a fraction ``P`` of random accesses become cache hits,
  where ``P`` is the cumulative access frequency of the cached objects.

This module provides those calculations plus a small bandwidth model used by
the interference microbenchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.hardware.specs import PlatformSpec, ProcessorKind, ProcessorSpec


@dataclass(frozen=True)
class AccessPattern:
    """Memory touches of one task execution for a single query.

    ``memory_accesses`` are uncached random DRAM accesses (``N^M_F``) and
    ``cache_accesses`` are L2 hits (``N^C_F``), per paper Table I.
    """

    memory_accesses: float
    cache_accesses: float

    def __add__(self, other: "AccessPattern") -> "AccessPattern":
        return AccessPattern(
            self.memory_accesses + other.memory_accesses,
            self.cache_accesses + other.cache_accesses,
        )

    def scaled(self, factor: float) -> "AccessPattern":
        """Scale both components, e.g. by a per-query probability."""
        return AccessPattern(self.memory_accesses * factor, self.cache_accesses * factor)

    def with_hot_fraction(self, hot_fraction: float) -> "AccessPattern":
        """Convert a fraction ``P`` of random accesses into cache hits.

        Implements the paper's popularity correction: ``N^M -> (1 - P) N^M``
        and ``N^C -> N^C + P N^M``.
        """
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(f"hot fraction must be in [0, 1], got {hot_fraction}")
        moved = self.memory_accesses * hot_fraction
        return AccessPattern(self.memory_accesses - moved, self.cache_accesses + moved)


def object_access_pattern(
    object_bytes: int,
    cache_line_bytes: int,
    *,
    already_cached: bool = False,
    sequential: bool = False,
) -> AccessPattern:
    """Access pattern for reading/writing one key-value object of ``object_bytes``.

    Parameters
    ----------
    object_bytes:
        Total bytes touched (key + value + header as appropriate).
    cache_line_bytes:
        ``C^XPU`` of the processor doing the touching.
    already_cached:
        Task affinity: a previous task in the same stage brought the object
        into cache, so even the first line is an L2 hit.
    sequential:
        The object sits in a sequentially written buffer (the RD/WR
        separation trick, Section III-A): prefetch covers every line, so the
        leading access is a cache access too.
    """
    if object_bytes <= 0:
        return AccessPattern(0.0, 0.0)
    lines = max(1, math.ceil(object_bytes / cache_line_bytes))
    if already_cached or sequential:
        return AccessPattern(0.0, float(lines))
    return AccessPattern(1.0, float(lines - 1))


def access_cost_ns(
    pattern: AccessPattern,
    proc: ProcessorSpec,
    *,
    interference: float = 1.0,
) -> float:
    """Time in ns for one query's memory traffic on ``proc``.

    Random accesses pay ``L_M`` divided by the core's memory-level
    parallelism (independent misses overlap); cache accesses pay ``L_C``.
    ``interference`` is the paper's ``mu`` factor (>= 1).
    """
    if interference < 1.0:
        raise ConfigurationError(f"interference factor must be >= 1, got {interference}")
    random_ns = pattern.memory_accesses * proc.mem_latency_ns / proc.mem_parallelism
    cached_ns = pattern.cache_accesses * proc.cache_latency_ns
    return (random_ns + cached_ns) * interference


class MemorySystem:
    """Shared-memory capacity/bandwidth bookkeeping for one platform.

    Answers two questions the cost model needs:

    * how many key-value objects of a given average size fit in the
      shareable region (Section V-A stores as many objects as fit in the
      1,908 MB CPU/GPU-shared allocation);
    * what fraction of a Zipf-skewed access stream hits the CPU cache
      (Section IV-B, factor ``P``).
    """

    #: Per-object bookkeeping overhead: slab header, LRU links, access
    #: counter and sampling timestamp (Section IV-B's frequency sampler).
    OBJECT_OVERHEAD_BYTES = 40

    def __init__(self, platform: PlatformSpec):
        self._platform = platform

    @property
    def platform(self) -> PlatformSpec:
        return self._platform

    def object_capacity(self, key_size: int, value_size: int) -> int:
        """Number of key-value objects that fit in the shared region."""
        per_object = key_size + value_size + self.OBJECT_OVERHEAD_BYTES
        return max(1, self._platform.shared_memory_bytes // per_object)

    def cached_objects(self, kind: ProcessorKind, key_size: int, value_size: int) -> int:
        """Objects that fit in the processor's last-level cache."""
        proc = self._platform.processor(kind)
        per_object = key_size + value_size + self.OBJECT_OVERHEAD_BYTES
        return proc.cache_size_bytes // per_object

    def hot_fraction(
        self,
        kind: ProcessorKind,
        key_size: int,
        value_size: int,
        zipf_skew: float,
        total_objects: int | None = None,
        measured: float | None = None,
    ) -> float:
        """Fraction ``P`` of object accesses served from cache under Zipf skew.

        ``P = sum_{i<=n'} f_i / sum_{j<=n} f_j`` with ``f_i ~ 1/i^theta``
        (paper Section IV-B).  A uniform workload (``zipf_skew == 0``) gets
        ``P = n'/n`` which is negligible for realistic store sizes.

        ``measured`` is an observed hot-hit rate (e.g. the runtime hot-key
        cache's window hit rate); it floors the analytic estimate — a cache
        demonstrably serving X% of reads proves at least that fraction of
        accesses is hot, while the analytic curve still governs workloads
        the cache has not yet warmed up on.
        """
        n = total_objects or self.object_capacity(key_size, value_size)
        n_cached = min(n, self.cached_objects(kind, key_size, value_size))
        if n <= 0 or n_cached <= 0:
            return 0.0
        if zipf_skew <= 0.0:
            analytic = n_cached / n
        else:
            analytic = _zipf_cdf(n_cached, n, zipf_skew)
        if measured is not None:
            return min(1.0, max(analytic, measured))
        return analytic

    def bytes_per_second(self) -> float:
        """Peak shared-memory bandwidth in bytes/second."""
        return self._platform.memory_bandwidth_gbs * 1e9


@lru_cache(maxsize=4096)
def _harmonic(n: int, theta: float) -> float:
    """Generalised harmonic number ``H_{n,theta}``; exact below the cutoff,
    Euler–Maclaurin approximation above it (store sizes reach tens of
    millions of objects, so the exact sum is too slow).

    Cached: a configuration search evaluates hundreds of candidate
    pipelines against one profile, and every ``hot_fraction`` call lands
    on the same few ``(n, theta)`` pairs — without the cache the Python
    head sum dominates whole-server profiles."""
    if n <= 0:
        return 0.0
    cutoff = 10000
    if n <= cutoff:
        return sum(1.0 / (i**theta) for i in range(1, n + 1))
    head = sum(1.0 / (i**theta) for i in range(1, cutoff + 1))
    # integral of x^-theta from cutoff to n (theta == 1 handled separately)
    if abs(theta - 1.0) < 1e-9:
        tail = math.log(n / cutoff)
    else:
        tail = (n ** (1.0 - theta) - cutoff ** (1.0 - theta)) / (1.0 - theta)
    return head + tail


def _zipf_cdf(k: int, n: int, theta: float) -> float:
    """Cumulative access probability of the ``k`` most popular of ``n`` keys."""
    if k >= n:
        return 1.0
    return _harmonic(k, theta) / _harmonic(n, theta)
