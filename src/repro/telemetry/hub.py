"""The telemetry hub: one enabled flag, one registry, one event log.

Instrumented modules never construct their own registries; they call
:func:`get_telemetry` and check :attr:`Telemetry.enabled` before doing any
work.  The process-wide default hub starts *disabled*, so the instrumented
hot paths cost exactly one attribute check until someone opts in (the CLI's
``--telemetry-out``, the ``repro telemetry`` subcommand, or a test).
"""

from __future__ import annotations

from repro.telemetry.events import DEFAULT_CAPACITY, EventLog, TraceEvent
from repro.telemetry.registry import MetricsRegistry


class Telemetry:
    """A metrics registry and an event log behind a single on/off switch.

    ``enabled`` is a plain attribute read by hot paths — no property, no
    lock — so the disabled case stays as close to free as Python allows.
    """

    def __init__(self, enabled: bool = False, capacity: int = DEFAULT_CAPACITY):
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.events = EventLog(capacity)

    def enable(self) -> "Telemetry":
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        self.enabled = False
        return self

    def emit(self, event: TraceEvent) -> None:
        """Append an event iff enabled (convenience for instrumented code)."""
        if self.enabled:
            self.events.append(event)

    def reset(self) -> None:
        """Zero metrics and drop retained events; keeps the enabled state."""
        self.registry.reset()
        self.events.clear()


#: The process-wide hub every instrumented module shares.
_default = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The process-wide :class:`Telemetry` hub (disabled until enabled)."""
    return _default


def configure(enabled: bool = True, capacity: int | None = None) -> Telemetry:
    """Reconfigure the process-wide hub in place.

    Replacing the hub object would strand modules that cached it, so the
    singleton is mutated: optionally swapping in a fresh event log of the
    requested capacity and always resetting collected data.
    """
    if capacity is not None:
        _default.events = EventLog(capacity)
    _default.reset()
    _default.enabled = enabled
    return _default
