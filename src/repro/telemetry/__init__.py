"""repro.telemetry — tracing, metrics, and replan-audit for the DIDO repro.

The adaptive pipeline's whole premise is that the right configuration
changes with the workload; this package makes the system's view of itself
observable: what each stage cost per batch, why the controller re-planned,
how often work stealing fired, and what the profiler saw.  Production KV
stores drive elasticity and offload policies from exactly these signals.

Three pieces, one switch:

* :class:`MetricsRegistry` (``registry``) — process-wide counters, gauges,
  and fixed-bucket histograms with labels;
* :class:`EventLog` (``events``) — a bounded ring of structured
  :class:`TraceEvent` records (stage spans, replan audits, steal claims);
* exporters (``exporters``) — JSONL traces for analysis, Prometheus text
  for scraping, and a console summary for humans.

Everything hangs off the process-wide hub returned by
:func:`get_telemetry`, which starts **disabled**: instrumented hot paths
pay one attribute check and nothing else until :func:`configure` (or the
CLI's ``--telemetry-out`` / ``repro telemetry``) turns collection on.
"""

from repro.telemetry.events import (
    DEFAULT_CAPACITY,
    EventLog,
    TraceEvent,
    replan_event,
    stage_span,
    steal_event,
)
from repro.telemetry.exporters import (
    console_summary,
    export_jsonl,
    parse_prometheus,
    prometheus_text,
    read_jsonl,
)
from repro.telemetry.hub import Telemetry, configure, get_telemetry
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.scoped import span, timed

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "TraceEvent",
    "configure",
    "console_summary",
    "export_jsonl",
    "get_telemetry",
    "parse_prometheus",
    "prometheus_text",
    "read_jsonl",
    "replan_event",
    "span",
    "stage_span",
    "steal_event",
    "timed",
]
