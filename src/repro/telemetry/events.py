"""Structured trace events and the bounded ring buffer that stores them.

Where :mod:`repro.telemetry.registry` aggregates, this module records
*occurrences*: one :class:`TraceEvent` per pipeline-stage span, re-planning
decision, or work-steal claim, in the order they happened.  The
:class:`EventLog` is a fixed-capacity ring so a long-running server never
grows without bound — old events fall off the head and are counted in
:attr:`EventLog.dropped` instead of silently vanishing.

Event kinds used by the instrumented system:

``span``
    One timed region: a pipeline stage/task execution (fields: ``stage``,
    ``task``, ``processor``, ``batch``) or any :func:`repro.telemetry.span`
    block.
``replan``
    One :class:`~repro.core.controller.AdaptationController` decision with
    the full before/after pipeline configuration, the profile delta that
    triggered it, and the cost model's expectations.
``steal``
    Work-steal claim summary for one stage execution (sets per owner).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from repro.errors import TelemetryError

#: Default ring capacity; ~a few thousand batches of a busy system.
DEFAULT_CAPACITY = 8192


def _finite(value: float | None) -> float | None:
    """JSON-safe float: non-finite values become None (strict JSON has no
    Infinity/NaN, and a bootstrap replan carries an infinite trigger)."""
    if value is None or not math.isfinite(value):
        return None
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One structured record: a kind, a name, a wall timestamp, and fields.

    ``duration_us`` is set for spans and None otherwise.  ``fields`` holds
    only JSON-scalar values so every event survives a JSONL round trip.
    """

    kind: str
    name: str
    t_wall: float
    duration_us: float | None = None
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "t_wall": self.t_wall,
            "duration_us": _finite(self.duration_us),
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        try:
            return cls(
                kind=data["kind"],
                name=data["name"],
                t_wall=float(data["t_wall"]),
                duration_us=data.get("duration_us"),
                fields=dict(data.get("fields") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed event record: {data!r}") from exc


def stage_span(
    stage: str,
    task: str,
    processor: str,
    duration_us: float,
    batch: int,
) -> TraceEvent:
    """Span for one task's execution inside one pipeline stage."""
    return TraceEvent(
        kind="span",
        name="pipeline_stage",
        t_wall=time.time(),
        duration_us=duration_us,
        fields={"stage": stage, "task": task, "processor": processor, "batch": batch},
    )


def replan_event(
    batch_index: int,
    trigger_change: float,
    old_config: str | None,
    new_config: str,
    estimated_mops: float,
    changed: bool,
    estimated_tmax_us: float | None = None,
) -> TraceEvent:
    """Audit record of one adaptation decision (configs by full label)."""
    return TraceEvent(
        kind="replan",
        name="adaptation",
        t_wall=time.time(),
        fields={
            "batch": batch_index,
            "trigger_change": _finite(trigger_change),
            "old_config": old_config,
            "new_config": new_config,
            "estimated_mops": estimated_mops,
            "estimated_tmax_us": _finite(estimated_tmax_us),
            "changed": changed,
        },
    )


def steal_event(stage: str, claims: dict[str, int], batch: int) -> TraceEvent:
    """Summary of one stage's work-steal claims, keyed by owner."""
    return TraceEvent(
        kind="steal",
        name="work_steal",
        t_wall=time.time(),
        fields={"stage": stage, "batch": batch, **{f"sets_{o}": c for o, c in claims.items()}},
    )


class EventLog:
    """Thread-safe bounded ring buffer of :class:`TraceEvent`.

    Appending past capacity evicts the oldest event and increments
    :attr:`dropped`; readers always see the most recent ``capacity`` events
    in arrival order.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise TelemetryError("event log capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._start = 0  # ring head index into _events once full
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self._events) < self.capacity:
                self._events.append(event)
            else:
                self._events[self._start] = event
                self._start = (self._start + 1) % self.capacity
                self.dropped += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def snapshot(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        with self._lock:
            return self._events[self._start :] + self._events[: self._start]

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.snapshot() if e.kind == kind]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._start = 0
            self.dropped = 0
