"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the *aggregated* half of the telemetry subsystem (the
:mod:`repro.telemetry.events` ring buffer is the per-occurrence half).
Instruments follow the Prometheus data model — a metric family has a name,
a help string, and one sample per label set — because that is the format
the exporters speak and the format operators already know how to scrape.

Everything is thread-safe: the UDP server's background thread, the
functional pipeline's steal helpers, and the main thread all update the
same instruments.  Updates take one short lock per call; hot paths are
expected to check :attr:`repro.telemetry.hub.Telemetry.enabled` first so a
disabled system never reaches these locks at all.
"""

from __future__ import annotations

import re
import threading
from typing import Iterable

from repro.errors import TelemetryError

#: Prometheus-legal metric / label names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: A canonicalised label set: sorted ``(key, value)`` pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets (microseconds): spans from sub-µs task phases
#: up to multi-ms batch periods, roughly log-spaced like Prometheus defaults.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0,
)


def _validate_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise TelemetryError(f"invalid metric name {name!r}")
    return name


def _label_key(labels: dict[str, object]) -> LabelKey:
    for key in labels:
        if not _NAME_RE.match(key):
            raise TelemetryError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Common machinery: one sample slot per label set, guarded by a lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = _validate_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._samples: dict[LabelKey, object] = {}

    def _slot(self, labels: dict[str, object], default_factory):
        key = _label_key(labels)
        slot = self._samples.get(key)
        if slot is None:
            slot = self._samples[key] = default_factory()
        return slot

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()

    def label_sets(self) -> list[LabelKey]:
        with self._lock:
            return list(self._samples)


class Counter(_Instrument):
    """Monotonically increasing count (queries served, claims made, ...)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up")
        with self._lock:
            key = _label_key(labels)
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._samples.get(_label_key(labels), 0.0))

    def samples(self) -> list[tuple[LabelKey, float]]:
        with self._lock:
            return [(k, float(v)) for k, v in self._samples.items()]


class Gauge(_Instrument):
    """Point-in-time value (window get_ratio, estimated skew, ...)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        with self._lock:
            key = _label_key(labels)
            self._samples[key] = float(self._samples.get(key, 0.0)) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._samples.get(_label_key(labels), 0.0))

    def samples(self) -> list[tuple[LabelKey, float]]:
        with self._lock:
            return [(k, float(v)) for k, v in self._samples.items()]


class _HistogramSlot:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int):
        # One count per finite bucket plus the +Inf overflow bucket.
        self.bucket_counts = [0] * (num_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution (per-stage span times, batch periods).

    Buckets are cumulative upper bounds as in Prometheus: an observation
    lands in the first bucket whose bound is >= the value, and every export
    reports cumulative counts (``le`` semantics).
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, help: str = ""):
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError("a histogram needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError("histogram buckets must be strictly increasing")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        with self._lock:
            slot = self._slot(labels, lambda: _HistogramSlot(len(self.buckets)))
            index = len(self.buckets)  # +Inf by default
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            slot.bucket_counts[index] += 1
            slot.sum += value
            slot.count += 1

    def count(self, **labels: object) -> int:
        with self._lock:
            slot = self._samples.get(_label_key(labels))
            return slot.count if slot else 0

    def total(self, **labels: object) -> float:
        with self._lock:
            slot = self._samples.get(_label_key(labels))
            return slot.sum if slot else 0.0

    def bucket_counts(self, **labels: object) -> list[int]:
        """Per-bucket (non-cumulative) counts, +Inf bucket last."""
        with self._lock:
            slot = self._samples.get(_label_key(labels))
            if slot is None:
                return [0] * (len(self.buckets) + 1)
            return list(slot.bucket_counts)

    def samples(self) -> list[tuple[LabelKey, _HistogramSlot]]:
        with self._lock:
            return list(self._samples.items())


class MetricsRegistry:
    """Names -> instruments, with get-or-create semantics.

    Calling :meth:`counter` twice with the same name returns the same
    instrument (so instrumented modules need no coordination), but asking
    for an existing name as a different kind is an error — silent kind
    confusion would corrupt exports.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, name: str, factory, kind: str) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise TelemetryError(
                        f"metric {name!r} is a {existing.kind}, not a {kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, buckets, help), "histogram")

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._instruments.get(name)

    def reset(self) -> None:
        """Zero every sample but keep the registered instruments."""
        for instrument in self.instruments():
            instrument.reset()

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready view of every instrument's samples.

        Label sets are rendered as ``k=v`` comma-joined strings so the
        snapshot survives a JSON round trip without losing label identity.
        """
        out: dict[str, dict] = {}
        for instrument in self.instruments():
            entry: dict[str, object] = {"kind": instrument.kind, "help": instrument.help}
            if isinstance(instrument, Histogram):
                entry["buckets"] = list(instrument.buckets)
                entry["samples"] = {
                    _render_labels(key): {
                        "bucket_counts": list(slot.bucket_counts),
                        "sum": slot.sum,
                        "count": slot.count,
                    }
                    for key, slot in instrument.samples()
                }
            else:
                entry["samples"] = {
                    _render_labels(key): value for key, value in instrument.samples()
                }
            out[instrument.name] = entry
        return out


def _render_labels(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)
