"""Exporters: JSONL traces, Prometheus text format, console summaries.

Three consumers, three formats:

* **JSONL** — the benchmark/analysis format.  One JSON object per line: a
  header, one ``metric`` record per instrument, then one ``event`` record
  per retained trace event.  :func:`read_jsonl` round-trips the file back
  into a metrics snapshot and :class:`~repro.telemetry.events.TraceEvent`
  objects, which is what the figure scripts and tests consume.
* **Prometheus text format** — for scraping a live server;
  :func:`parse_prometheus` is a minimal reader used to validate exports
  and by tests.
* **Console summary** — a human-readable digest for interactive runs.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro.errors import TelemetryError
from repro.telemetry.events import TraceEvent
from repro.telemetry.hub import Telemetry
from repro.telemetry.registry import Histogram, MetricsRegistry

#: Schema tag written into every JSONL header (bump on breaking change).
JSONL_SCHEMA = "repro.telemetry/1"


# ------------------------------------------------------------------- JSONL


def export_jsonl(telemetry: Telemetry, sink: str | IO[str]) -> int:
    """Write metrics + events as JSON Lines; returns records written.

    ``sink`` is a path or an open text file.  Uses ``allow_nan=False`` so
    the output is strict JSON — event constructors already sanitise
    non-finite floats to null.
    """
    records = _jsonl_records(telemetry)
    if isinstance(sink, str):
        with open(sink, "w", encoding="utf-8") as fh:
            return _write_lines(records, fh)
    return _write_lines(records, sink)


def _write_lines(records: Iterable[dict], fh: IO[str]) -> int:
    count = 0
    for record in records:
        fh.write(json.dumps(record, allow_nan=False) + "\n")
        count += 1
    return count


def _jsonl_records(telemetry: Telemetry) -> list[dict]:
    header = {
        "type": "header",
        "schema": JSONL_SCHEMA,
        "events_retained": len(telemetry.events),
        "events_dropped": telemetry.events.dropped,
    }
    metrics = [
        {"type": "metric", "name": name, **entry}
        for name, entry in telemetry.registry.snapshot().items()
    ]
    events = [{"type": "event", **e.to_dict()} for e in telemetry.events.snapshot()]
    return [header, *metrics, *events]


def read_jsonl(source: str | IO[str]) -> tuple[dict[str, dict], list[TraceEvent]]:
    """Parse a JSONL export back into (metrics snapshot, events)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = source.readlines()
    metrics: dict[str, dict] = {}
    events: list[TraceEvent] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"malformed JSONL line: {line[:80]!r}") from exc
        rtype = record.get("type")
        if rtype == "metric":
            name = record.pop("name")
            record.pop("type")
            metrics[name] = record
        elif rtype == "event":
            record.pop("type")
            events.append(TraceEvent.from_dict(record))
        elif rtype != "header":
            raise TelemetryError(f"unknown JSONL record type {rtype!r}")
    return metrics, events


# -------------------------------------------------------------- Prometheus


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format.

    One ``# HELP``/``# TYPE`` family per registry entry; histograms expand
    into cumulative ``_bucket`` series plus ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for key, slot in instrument.samples():
                cumulative = 0
                for bound, count in zip(instrument.buckets, slot.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{_prom_labels(key, le=_format_bound(bound))}"
                        f" {cumulative}"
                    )
                cumulative += slot.bucket_counts[-1]
                lines.append(f'{name}_bucket{_prom_labels(key, le="+Inf")} {cumulative}')
                lines.append(f"{name}_sum{_prom_labels(key)} {_format_value(slot.sum)}")
                lines.append(f"{name}_count{_prom_labels(key)} {slot.count}")
        else:
            for key, value in instrument.samples():
                lines.append(f"{name}{_prom_labels(key)} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _format_bound(bound: float) -> str:
    return f"{bound:g}"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(key, **extra: str) -> str:
    pairs = [(k, v) for k, v in key] + list(extra.items())
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def parse_prometheus(text: str) -> dict[str, dict]:
    """Minimal text-format parser: family name -> {type, samples}.

    ``samples`` maps the full series line key (name + label string) to the
    parsed float value.  Enough to validate an export and to assert on
    specific series in tests; not a general scraper.
    """
    families: dict[str, dict] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            try:
                _, _, name, kind = line.split(None, 3)
            except ValueError as exc:
                raise TelemetryError(f"malformed TYPE line: {line!r}") from exc
            families[name] = {"type": kind, "samples": {}}
            continue
        if line.startswith("#"):
            continue
        try:
            series, value = line.rsplit(None, 1)
            parsed = float(value)
        except ValueError as exc:
            raise TelemetryError(f"malformed sample line: {line!r}") from exc
        base = series.split("{", 1)[0]
        family = _family_of(base, families)
        if family is None:
            raise TelemetryError(f"sample {series!r} outside any TYPE family")
        families[family]["samples"][series] = parsed
    return families


def _family_of(series_name: str, families: dict[str, dict]) -> str | None:
    if series_name in families:
        return series_name
    for suffix in ("_bucket", "_sum", "_count"):
        if series_name.endswith(suffix) and series_name[: -len(suffix)] in families:
            return series_name[: -len(suffix)]
    return None


# ----------------------------------------------------------------- console

#: The batch-coalescing gauges the console summary calls out explicitly
#: (queue carry-over, batch fill vs target, shard balance, receive-loop
#: drain depth, and the skew-aware hot path's dedup/cache effectiveness)
#: — the knobs an operator tunes ``--batch-size``/``--coalesce-us``/
#: ``--shards``/``--drain-limit``/``--dedup``/``--hot-cache`` against.
COALESCING_SERIES = (
    "repro_server_queue_depth",
    "repro_batch_fill_ratio",
    "repro_shard_imbalance",
    "repro_datagrams_per_poll",
    "repro_batch_dedup_ratio",
    "repro_hotkey_cache_hit_rate",
)

#: Wire-plane timers shown next to the coalescing gauges: window decode
#: and columnar response framing (nanoseconds per batch window).
WIRE_TIMER_SERIES = (
    "repro_wire_parse_ns",
    "repro_wire_frame_ns",
)

#: Log-arena health called out in its own section: the live/dead byte
#: balance an operator reads the compactor's effectiveness from, plus the
#: compaction-pass counter (see ``--heap`` and
#: :meth:`repro.kv.store.KVStore.maintenance`).
LOGARENA_SERIES = (
    "repro_logarena_live_bytes",
    "repro_logarena_dead_bytes",
    "repro_logarena_compactions_total",
)

#: Delta-index health: pending keys, merges landed, and the per-merge
#: wall-time histogram (see ``--delta-index`` and
#: :meth:`repro.kv.store.KVStore.maintenance`).
DELTA_SERIES = (
    "repro_delta_index_size",
    "repro_delta_merges_total",
    "repro_delta_merge_ns",
)

#: Procshard pipelined-IPC breakdown: where a window's wall time goes
#: (gather/encode, ring send, reply wait, response decode, result
#: scatter), writer-side ring backpressure, and how deep the in-flight
#: overlap actually runs (see ``--pipeline-depth`` and
#: :class:`repro.engine.procshard.ProcShardEngine`).
PROCSHARD_SERIES = (
    "repro_procshard_encode_ns",
    "repro_procshard_send_ns",
    "repro_procshard_wait_ns",
    "repro_procshard_decode_ns",
    "repro_procshard_scatter_ns",
    "repro_procshard_ring_stall_ns",
    "repro_procshard_queue_depth_bytes",
    "repro_procshard_inflight_windows",
    "repro_procshard_overlap_ratio",
)


def console_summary(telemetry: Telemetry, max_events: int = 10) -> str:
    """Human-readable digest: metric totals, coalescing gauges, recent events."""
    lines = ["telemetry summary", "================="]
    snapshot = telemetry.registry.snapshot()
    if not snapshot:
        lines.append("(no metrics recorded)")
    for name, entry in snapshot.items():
        if entry["kind"] == "histogram":
            # Nanosecond-valued timers (the ``*_ns`` series) render in us
            # like everything else instead of inheriting a wrong suffix.
            scale = 1e3 if name.endswith("_ns") else 1.0
            for labels, slot in sorted(entry["samples"].items()):
                mean = slot["sum"] / slot["count"] if slot["count"] else 0.0
                label_text = f"{{{labels}}}" if labels else ""
                lines.append(
                    f"  {name}{label_text}: n={slot['count']} "
                    f"mean={mean / scale:.1f}us"
                )
        else:
            for labels, value in sorted(entry["samples"].items()):
                label_text = f"{{{labels}}}" if labels else ""
                lines.append(f"  {name}{label_text}: {value:g}")
    recorded = [name for name in COALESCING_SERIES if name in snapshot]
    timers = [name for name in WIRE_TIMER_SERIES if name in snapshot]
    if recorded or timers:
        lines.append("")
        lines.append("batch coalescing")
        for name in recorded:
            for labels, value in sorted(snapshot[name]["samples"].items()):
                label_text = f"{{{labels}}}" if labels else ""
                lines.append(f"  {name}{label_text}: {value:g}")
        for name in timers:
            for labels, slot in sorted(snapshot[name]["samples"].items()):
                mean = slot["sum"] / slot["count"] if slot["count"] else 0.0
                label_text = f"{{{labels}}}" if labels else ""
                lines.append(
                    f"  {name}{label_text}: n={slot['count']} mean={mean / 1e3:.1f}us"
                )
    arena = [name for name in LOGARENA_SERIES if name in snapshot]
    if arena:
        lines.append("")
        lines.append("log arena")
        for name in arena:
            for labels, value in sorted(snapshot[name]["samples"].items()):
                label_text = f"{{{labels}}}" if labels else ""
                lines.append(f"  {name}{label_text}: {value:g}")
    delta = [name for name in DELTA_SERIES if name in snapshot]
    if delta:
        lines.append("")
        lines.append("delta index")
        for name in delta:
            entry = snapshot[name]
            if entry["kind"] == "histogram":
                for labels, slot in sorted(entry["samples"].items()):
                    mean = slot["sum"] / slot["count"] if slot["count"] else 0.0
                    label_text = f"{{{labels}}}" if labels else ""
                    lines.append(
                        f"  {name}{label_text}: n={slot['count']} "
                        f"mean={mean / 1e3:.1f}us"
                    )
            else:
                for labels, value in sorted(entry["samples"].items()):
                    label_text = f"{{{labels}}}" if labels else ""
                    lines.append(f"  {name}{label_text}: {value:g}")
    procshard = [name for name in PROCSHARD_SERIES if name in snapshot]
    if procshard:
        lines.append("")
        lines.append("procshard pipeline")
        for name in procshard:
            entry = snapshot[name]
            if entry["kind"] == "histogram":
                for labels, slot in sorted(entry["samples"].items()):
                    mean = slot["sum"] / slot["count"] if slot["count"] else 0.0
                    label_text = f"{{{labels}}}" if labels else ""
                    lines.append(
                        f"  {name}{label_text}: n={slot['count']} "
                        f"mean={mean / 1e3:.1f}us"
                    )
            else:
                for labels, value in sorted(entry["samples"].items()):
                    label_text = f"{{{labels}}}" if labels else ""
                    lines.append(f"  {name}{label_text}: {value:g}")
    events = telemetry.events.snapshot()
    replans = [e for e in events if e.kind == "replan"]
    lines.append("")
    lines.append(
        f"events: {len(events)} retained, {telemetry.events.dropped} dropped, "
        f"{len(replans)} replans"
    )
    for event in events[-max_events:]:
        duration = f" {event.duration_us:.1f}us" if event.duration_us is not None else ""
        detail = " ".join(f"{k}={v}" for k, v in event.fields.items())
        lines.append(f"  [{event.kind}] {event.name}{duration} {detail}".rstrip())
    return "\n".join(lines)
