"""Zero-overhead-when-disabled context managers for timing code regions.

``with span("rebuild_index", shard=3): ...`` appends one ``span``
:class:`~repro.telemetry.events.TraceEvent` with the measured wall duration;
``with timed(histogram, stage="IN"): ...`` folds the duration into a
:class:`~repro.telemetry.registry.Histogram` instead.  When the hub is
disabled both return a shared no-op context manager — no clock reads, no
allocations beyond the call itself — so instrumentation can stay in hot
paths permanently.
"""

from __future__ import annotations

import time

from repro.telemetry.events import TraceEvent
from repro.telemetry.hub import Telemetry, get_telemetry
from repro.telemetry.registry import Histogram


class _NullContext:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL = _NullContext()


class _SpanContext:
    __slots__ = ("_telemetry", "_name", "_fields", "_t0")

    def __init__(self, telemetry: Telemetry, name: str, fields: dict):
        self._telemetry = telemetry
        self._name = name
        self._fields = fields

    def __enter__(self) -> "_SpanContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        duration_us = (time.perf_counter() - self._t0) * 1e6
        self._telemetry.events.append(
            TraceEvent(
                kind="span",
                name=self._name,
                t_wall=time.time(),
                duration_us=duration_us,
                fields=self._fields,
            )
        )


class _TimedContext:
    __slots__ = ("_histogram", "_labels", "_t0")

    def __init__(self, histogram: Histogram, labels: dict):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self) -> "_TimedContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe((time.perf_counter() - self._t0) * 1e6, **self._labels)


def span(name: str, telemetry: Telemetry | None = None, **fields):
    """Time a region and append a ``span`` event; no-op when disabled."""
    telemetry = telemetry if telemetry is not None else get_telemetry()
    if not telemetry.enabled:
        return _NULL
    return _SpanContext(telemetry, name, fields)


def timed(histogram: Histogram | str, telemetry: Telemetry | None = None, **labels):
    """Time a region into a histogram (microseconds); no-op when disabled.

    ``histogram`` may be the instrument itself or a metric name resolved
    against the hub's registry.
    """
    telemetry = telemetry if telemetry is not None else get_telemetry()
    if not telemetry.enabled:
        return _NULL
    if isinstance(histogram, str):
        histogram = telemetry.registry.histogram(histogram)
    return _TimedContext(histogram, labels)
