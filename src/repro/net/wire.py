"""Columnar wire plane: socket bytes to BatchPlane and back without
per-query Python objects.

The legacy codec (:mod:`repro.kv.protocol`) decodes every datagram into a
list of :class:`~repro.kv.protocol.Query` dataclasses — one
``struct.unpack`` plus one enum lookup plus one ``__post_init__`` per
query — and re-materialises every answer as a
:class:`~repro.kv.protocol.Response` before encoding it message by
message.  Once the index-side stages are batched (the vector/sharded
engines), that scalar wire path dominates the serve loop.  This module
replaces it with three columnar pieces:

* :func:`decode_window` — parses a *window* of datagram payloads in one
  vectorized pass.  All payloads are concatenated into a shared byte
  arena; a NumPy gather walks one query per still-active datagram per
  round (the query headers of all datagrams are decoded simultaneously),
  producing opcode / key-offset / key-length / value-offset /
  value-length columns.  Validation (unknown opcodes, truncation, empty
  keys, values on non-SET queries) happens on whole columns, with error
  messages byte-identical to the legacy decoder's
  :class:`~repro.errors.ProtocolError` texts.  A malformed datagram
  invalidates only itself — its queries are dropped from the window and
  the error is reported per datagram, exactly as if
  ``decode_queries`` had raised for that payload alone.
* :func:`encode_response_window` — writes an entire batch's responses
  into one preallocated ``bytearray`` in a single pass: the status and
  length header bytes are scattered with NumPy stores, values are copied
  once each, and the per-response byte offsets come from one cumulative
  sum.  Frames and datagrams are then *slices* of that buffer.
* :func:`cut_frame_bounds` / :func:`frames_for_response_columns` /
  :func:`chunk_response_payloads` — the MTU cut as one cumulative-sum
  walk (``searchsorted`` per emitted frame rather than a size check per
  message), byte-identical to the greedy first-fit of
  :func:`repro.net.packets._pack` and
  :func:`repro.server._chunk_responses`.

Everything degrades to a scalar fallback without NumPy, with identical
bytes and identical error behaviour.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.kv.protocol import (
    Query,
    QueryType,
    _QUERY_HEADER,
    _RESPONSE_HEADER,
)
from repro.net.packets import ETHERNET_MTU, Frame

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

if np is not None:
    #: Per-round header gather: ``u8[cur[:, None] + _HDR_OFFSETS]`` pulls
    #: each active datagram's 7 header bytes in one fancy index.
    _HDR_OFFSETS = np.arange(7, dtype=np.int64)
    #: One matmul turns the gathered header bytes into the three fields:
    #: columns are (opcode, key_len, value_len) in little-endian weights.
    _HDR_WEIGHTS = np.array(
        [
            [1, 0, 0],
            [0, 1, 0],
            [0, 1 << 8, 0],
            [0, 0, 1],
            [0, 0, 1 << 8],
            [0, 0, 1 << 16],
            [0, 0, 1 << 24],
        ],
        dtype=np.int64,
    )

#: Query header bytes: ``opcode:u8 | key_len:u16 | value_len:u32``.
QUERY_HEADER_BYTES = _QUERY_HEADER.size
#: Response header bytes: ``status:u8 | value_len:u32``.
RESPONSE_HEADER_BYTES = _RESPONSE_HEADER.size

#: Opcode -> QueryType, indexable by the raw wire opcode (0 is invalid).
_QTYPE_BY_OP = (None, QueryType.GET, QueryType.SET, QueryType.DELETE)

_EMPTY = b""


class QueryColumns:
    """A batch of queries in struct-of-arrays form.

    The three list columns (``qtypes``, ``keys``, ``values``) are exactly
    what :class:`~repro.engine.plane.BatchPlane` keeps per batch, so a
    decoded window plugs into the engine layer without ever constructing
    :class:`~repro.kv.protocol.Query` objects.  The optional NumPy columns
    (``opcodes``, ``key_lens``, ``value_lens``) ride along when the
    vectorized decoder produced them; the workload profiler folds whole
    batches with array sums instead of a per-query loop.

    Supports ``len()`` and slicing so the server's batch cut / carry-over
    logic treats a columnar segment exactly like a ``list[Query]``.
    """

    __slots__ = ("qtypes", "keys", "values", "opcodes", "key_lens", "value_lens")

    def __init__(
        self,
        qtypes: list[QueryType],
        keys: list[bytes],
        values: list[bytes],
        opcodes=None,
        key_lens=None,
        value_lens=None,
    ):
        self.qtypes = qtypes
        self.keys = keys
        self.values = values
        self.opcodes = opcodes
        self.key_lens = key_lens
        self.value_lens = value_lens

    def __len__(self) -> int:
        return len(self.qtypes)

    def __getitem__(self, item: slice) -> "QueryColumns":
        if not isinstance(item, slice):
            raise TypeError("QueryColumns supports slice indexing only")
        return QueryColumns(
            self.qtypes[item],
            self.keys[item],
            self.values[item],
            None if self.opcodes is None else self.opcodes[item],
            None if self.key_lens is None else self.key_lens[item],
            None if self.value_lens is None else self.value_lens[item],
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, QueryColumns):
            return NotImplemented
        return (
            self.qtypes == other.qtypes
            and self.keys == other.keys
            and self.values == other.values
        )

    def to_queries(self) -> list[Query]:
        """Materialise legacy Query objects (tests and compatibility)."""
        return [
            Query(qtype, key, value)
            for qtype, key, value in zip(self.qtypes, self.keys, self.values)
        ]

    @classmethod
    def from_queries(cls, queries: list[Query]) -> "QueryColumns":
        return cls(
            [q.qtype for q in queries],
            [q.key for q in queries],
            [q.value for q in queries],
        )

    @classmethod
    def concat(cls, parts: list["QueryColumns"]) -> "QueryColumns":
        if len(parts) == 1:
            return parts[0]
        qtypes: list[QueryType] = []
        keys: list[bytes] = []
        values: list[bytes] = []
        for part in parts:
            qtypes.extend(part.qtypes)
            keys.extend(part.keys)
            values.extend(part.values)
        arrays = None
        if np is not None and all(p.opcodes is not None for p in parts):
            arrays = (
                np.concatenate([p.opcodes for p in parts]) if parts else None,
                np.concatenate([p.key_lens for p in parts]),
                np.concatenate([p.value_lens for p in parts]),
            )
        if arrays is None:
            return cls(qtypes, keys, values)
        return cls(qtypes, keys, values, *arrays)


@dataclass
class WindowParseError:
    """One undecodable datagram in a decoded window."""

    #: Index of the offending payload in the window.
    datagram: int
    #: The legacy decoder's exact error message for this payload.
    message: str


def decode_payload(payload: bytes) -> QueryColumns:
    """Columnar decode of one payload; raises like ``decode_queries``.

    Byte-identical semantics to the legacy
    :func:`repro.kv.protocol.decode_queries`, including the exact
    :class:`~repro.errors.ProtocolError` messages and their precedence
    (header truncation, then unknown opcode, then body truncation, then
    the empty-key and value-on-non-SET constraints).
    """
    segments, errors = decode_window([payload])
    if errors:
        raise ProtocolError(errors[0].message)
    return segments[0]


def decode_window(
    payloads: list[bytes],
) -> tuple[list[QueryColumns], list[WindowParseError]]:
    """Decode many datagram payloads in one vectorized pass.

    Returns one :class:`QueryColumns` per payload (empty for empty or
    malformed payloads, aligned by index) plus the parse errors.  A
    malformed datagram contributes *no* queries — even ones parsed before
    the error — matching the legacy all-or-nothing per-datagram decode.

    The implementation is picked per window: the cross-datagram NumPy
    gather parses one query per datagram per *round*, so its cost scales
    with the deepest datagram's query count no matter how wide the window
    is — it amortises only when the window is much wider than deep (many
    small datagrams).  Deep windows (few large datagrams, the
    bulk-loading shape) use the columnar scalar walk, which still builds
    zero per-query objects and attaches the NumPy length columns.  Both
    produce identical columns and identical errors.
    """
    if not payloads:
        return [], []
    if np is None:
        return _decode_window_scalar(payloads)
    total = 0
    largest = 0
    for payload in payloads:
        size = len(payload)
        total += size
        if size > largest:
            largest = size
    if largest and total >= 64 * largest:
        return _decode_window_vector(payloads)
    return _decode_window_scalar(payloads)


# ------------------------------------------------------------ vector decode


def _decode_window_vector(payloads):
    m = len(payloads)
    arena = payloads[0] if m == 1 else b"".join(payloads)
    u8 = np.frombuffer(arena, dtype=np.uint8)
    lens = np.fromiter(map(len, payloads), dtype=np.int64, count=m)
    ends = np.cumsum(lens)
    starts = ends - lens
    cursors = starts.copy()

    errors: list[WindowParseError] = []
    errored: set[int] = set()

    def fail(ids, messages) -> None:
        for d, msg in zip(ids.tolist(), messages):
            errored.add(d)
            errors.append(WindowParseError(d, msg))

    # Per-round column chunks, concatenated (and reordered) at the end.
    chunk_dgram: list = []
    chunk_round: list = []
    chunk_op: list = []
    chunk_koff: list = []
    chunk_klen: list = []
    chunk_vlen: list = []

    active = np.nonzero(cursors < ends)[0]
    round_no = 0
    hdr = QUERY_HEADER_BYTES
    while active.size:
        cur = cursors[active]
        end = ends[active]
        base = starts[active]

        # 1. Header truncation (offset relative to the datagram start).
        bad = cur + hdr > end
        if bad.any():
            rel = (cur - base)[bad]
            fail(
                active[bad],
                [f"truncated query header at offset {o}" for o in rel.tolist()],
            )
            keep = ~bad
            active, cur, end, base = active[keep], cur[keep], end[keep], base[keep]
            if not active.size:
                break

        # One (A, 7) gather pulls every active header; one matmul against
        # the little-endian weight matrix assembles all three fields.
        fields = u8[cur[:, None] + _HDR_OFFSETS].astype(np.int64) @ _HDR_WEIGHTS
        op = fields[:, 0]
        klen = fields[:, 1]
        vlen = fields[:, 2]
        body = cur + hdr
        rel_body = body - base

        # Fast path: windows are overwhelmingly well-formed, so checks
        # 2-5 collapse into one combined mask; the ordered per-check
        # filtering below runs only when something is actually malformed
        # (error-message precedence must match the legacy decoder).
        malformed = (
            (op < 1)
            | (op > 3)
            | (body + klen + vlen > end)
            | (klen == 0)
            | ((op != 2) & (vlen > 0))
        )
        if malformed.any():
            # 2. Unknown opcode (legacy reports the offset *after* the
            # header).
            bad = (op < 1) | (op > 3)
            if bad.any():
                fail(
                    active[bad],
                    [
                        f"unknown opcode {o} at offset {r}"
                        for o, r in zip(op[bad].tolist(), rel_body[bad].tolist())
                    ],
                )
                keep = ~bad
                active, cur, end = active[keep], cur[keep], end[keep]
                op, klen, vlen = op[keep], klen[keep], vlen[keep]
                body, rel_body = body[keep], rel_body[keep]
                if not active.size:
                    break

            # 3. Body truncation.
            bad = body + klen + vlen > end
            if bad.any():
                fail(
                    active[bad],
                    [
                        f"truncated query body at offset {o}"
                        for o in rel_body[bad].tolist()
                    ],
                )
                keep = ~bad
                active, cur, end = active[keep], cur[keep], end[keep]
                op, klen, vlen, body = op[keep], klen[keep], vlen[keep], body[keep]
                if not active.size:
                    break

            # 4. The Query constraints: non-empty key, value only on SET.
            bad = klen == 0
            if bad.any():
                fail(active[bad], ["query key must be non-empty"] * int(bad.sum()))
                keep = ~bad
                active, end = active[keep], end[keep]
                op, klen, vlen, body = op[keep], klen[keep], vlen[keep], body[keep]
                if not active.size:
                    break
            bad = (op != 2) & (vlen > 0)
            if bad.any():
                fail(
                    active[bad],
                    [
                        f"{_QTYPE_BY_OP[o].name} query cannot carry a value"
                        for o in op[bad].tolist()
                    ],
                )
                keep = ~bad
                active, end = active[keep], end[keep]
                op, klen, vlen, body = op[keep], klen[keep], vlen[keep], body[keep]
                if not active.size:
                    break

        chunk_dgram.append(active)
        chunk_round.append(np.full(active.size, round_no, dtype=np.int64))
        chunk_op.append(op)
        chunk_koff.append(body)
        chunk_klen.append(klen)
        chunk_vlen.append(vlen)

        nxt = body + klen + vlen
        cursors[active] = nxt
        active = active[nxt < end]
        round_no += 1

    empty = QueryColumns([], [], [])
    if not chunk_dgram:
        return [empty] * m, errors

    dgram = np.concatenate(chunk_dgram)
    rounds = np.concatenate(chunk_round)
    op = np.concatenate(chunk_op)
    koff = np.concatenate(chunk_koff)
    klen = np.concatenate(chunk_klen)
    vlen = np.concatenate(chunk_vlen)

    if errored:
        mask = ~np.isin(dgram, np.fromiter(errored, dtype=np.int64))
        dgram, rounds = dgram[mask], rounds[mask]
        op, koff, klen, vlen = op[mask], koff[mask], klen[mask], vlen[mask]

    # Rounds interleave datagrams; restore datagram-major, arrival order.
    order = np.lexsort((rounds, dgram))
    dgram, op = dgram[order], op[order]
    koff, klen, vlen = koff[order], klen[order], vlen[order]

    columns = _materialise(arena, op, koff, klen, vlen)
    if m == 1:
        return [columns], errors
    counts = np.bincount(dgram, minlength=m)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    segments = []
    for d in range(m):
        a, b = int(bounds[d]), int(bounds[d + 1])
        segments.append(columns[a:b] if b > a else empty)
    return segments, errors


def _materialise(arena, op, koff, klen, vlen) -> QueryColumns:
    """Turn offset/length columns into the engine's list columns."""
    n = op.shape[0]
    koff_l = koff.tolist()
    klen_l = klen.tolist()
    keys = [arena[o : o + L] for o, L in zip(koff_l, klen_l)]
    values = [_EMPTY] * n
    has_value = np.nonzero(vlen > 0)[0]
    if has_value.size:
        voff = koff + klen
        for i in has_value.tolist():
            o = voff[i]
            values[i] = arena[o : o + vlen[i]]
    qtypes = [_QTYPE_BY_OP[o] for o in op.tolist()]
    return QueryColumns(
        qtypes, keys, values, op.astype(np.uint8), klen, vlen
    )


# ------------------------------------------------------------ scalar decode


def _decode_payload_scalar(payload: bytes) -> QueryColumns:
    """Legacy-identical single-payload decode into columns.

    One `unpack_from` + two slices per query, no per-query objects.  When
    NumPy is available the opcode/length columns are attached as arrays
    (built once at the end) so the plane's index-subset and the
    profiler's column sums keep their vectorized fast paths.
    """
    qtypes: list[QueryType] = []
    keys: list[bytes] = []
    values: list[bytes] = []
    ops: list[int] = []
    offset = 0
    end = len(payload)
    hdr = QUERY_HEADER_BYTES
    unpack_from = _QUERY_HEADER.unpack_from
    while offset < end:
        if end - offset < hdr:
            raise ProtocolError(f"truncated query header at offset {offset}")
        opcode, key_len, value_len = unpack_from(payload, offset)
        offset += hdr
        if not 1 <= opcode <= 3:
            raise ProtocolError(f"unknown opcode {opcode} at offset {offset}")
        if end - offset < key_len + value_len:
            raise ProtocolError(f"truncated query body at offset {offset}")
        if key_len == 0:
            raise ProtocolError("query key must be non-empty")
        qtype = _QTYPE_BY_OP[opcode]
        if value_len and opcode != 2:
            raise ProtocolError(f"{qtype.name} query cannot carry a value")
        keys.append(payload[offset : offset + key_len])
        offset += key_len
        values.append(payload[offset : offset + value_len] if value_len else _EMPTY)
        offset += value_len
        qtypes.append(qtype)
        ops.append(opcode)
    if np is None:
        return QueryColumns(qtypes, keys, values)
    # Length columns come from one C-speed pass over the slices already
    # collected, keeping the per-query loop to a single extra append.
    n = len(qtypes)
    return QueryColumns(
        qtypes,
        keys,
        values,
        np.fromiter(ops, dtype=np.uint8, count=n),
        np.fromiter(map(len, keys), dtype=np.int64, count=n),
        np.fromiter(map(len, values), dtype=np.int64, count=n),
    )


def _decode_window_scalar(payloads):
    segments: list[QueryColumns] = []
    errors: list[WindowParseError] = []
    empty = QueryColumns([], [], [])
    for d, payload in enumerate(payloads):
        try:
            segments.append(_decode_payload_scalar(payload))
        except ProtocolError as exc:
            segments.append(empty)
            errors.append(WindowParseError(d, str(exc)))
    return segments, errors


# --------------------------------------------------------- response framing


def encode_response_window(
    statuses: list[int],
    values: list[bytes | None],
    sizes: list[int] | None = None,
):
    """Encode a whole response batch into one buffer, single pass.

    ``statuses`` are raw wire status codes; ``values`` may contain ``None``
    for value-less responses (the plane's ``read_values`` column is used
    directly — SET/DELETE/miss rows are ``None`` there).  ``sizes`` is the
    engine's precomputed response-size column; without it sizes are
    derived in one pass.

    Returns ``(buffer, offsets)``: a ``bytearray`` holding every encoded
    response back to back, and the ``len(statuses) + 1`` cumulative byte
    offsets (``buffer[offsets[i]:offsets[i+1]]`` is response ``i``).  The
    bytes are identical to ``encode_responses`` over the same responses.
    """
    n = len(statuses)
    hdr = RESPONSE_HEADER_BYTES
    if np is None:
        return _encode_window_scalar(statuses, values, n)
    if sizes is None:
        vlens = np.fromiter(
            (0 if v is None else len(v) for v in values), dtype=np.int64, count=n
        )
        sz = vlens + hdr
    else:
        sz = np.asarray(sizes, dtype=np.int64)
        vlens = sz - hdr
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(sz, out=offsets[1:])
    buffer = bytearray(int(offsets[-1]))
    view = np.frombuffer(buffer, dtype=np.uint8)
    heads = offsets[:-1]
    view[heads] = np.asarray(statuses, dtype=np.uint8)
    view[heads + 1] = (vlens & 0xFF).astype(np.uint8)
    view[heads + 2] = ((vlens >> 8) & 0xFF).astype(np.uint8)
    view[heads + 3] = ((vlens >> 16) & 0xFF).astype(np.uint8)
    view[heads + 4] = ((vlens >> 24) & 0xFF).astype(np.uint8)
    mv = memoryview(buffer)
    if vlens.any():
        heads_l = heads.tolist()
        for i in np.nonzero(vlens)[0].tolist():
            start = heads_l[i] + hdr
            value = values[i]
            mv[start : start + len(value)] = value
    return buffer, offsets


def _encode_window_scalar(statuses, values, n):
    pack = _RESPONSE_HEADER.pack
    offsets = [0] * (n + 1)
    parts: list[bytes] = []
    total = 0
    for i in range(n):
        value = values[i] or _EMPTY
        parts.append(pack(statuses[i], len(value)))
        parts.append(value)
        total += RESPONSE_HEADER_BYTES + len(value)
        offsets[i + 1] = total
    return bytearray(b"".join(parts)), offsets


def decode_response_window(buffer, sizes, offset: int = 0):
    """Inverse of :func:`encode_response_window` given per-row frame sizes.

    ``sizes`` is the per-row total frame size column (header + payload,
    the WR column the procshard response block carries).  Returns
    ``(statuses, values)``: an int64 status array and an object array of
    payload bytes (``None`` for non-OK rows, ``b""`` for OK rows with an
    empty value) — the plane's ``read_values`` convention.  Status bytes
    are gathered with one fancy-indexed load over the window; only OK
    rows' payloads are copied out.  Lists come back on numpy-less
    installs.
    """
    hdr = RESPONSE_HEADER_BYTES
    if np is None:  # pragma: no cover - exercised only on numpy-less installs
        statuses: list[int] = []
        values: list[bytes | None] = []
        at = offset
        for size in sizes:
            status = buffer[at]
            statuses.append(status)
            if status == 0:
                values.append(bytes(buffer[at + hdr : at + size]))
            else:
                values.append(None)
            at += size
        return statuses, values
    sz = np.asarray(sizes, dtype=np.int64)
    n = len(sz)
    ends = np.empty(n, dtype=np.int64)
    np.cumsum(sz, out=ends)
    ends += offset
    starts = ends - sz
    u8 = np.frombuffer(buffer, dtype=np.uint8, count=len(buffer))
    statuses = u8[starts].astype(np.int64) if n else np.empty(0, dtype=np.int64)
    values = np.empty(n, dtype=object)
    ok_rows = np.nonzero(statuses == 0)[0]
    if ok_rows.size:
        payload_starts = (starts[ok_rows] + hdr).tolist()
        payload_ends = ends[ok_rows].tolist()
        if type(buffer) is bytes:
            # bytes slices straight to bytes — no memoryview round trip —
            # and one fancy-indexed scatter replaces per-row assignment.
            values[ok_rows] = [
                buffer[start:end] if end > start else _EMPTY
                for start, end in zip(payload_starts, payload_ends)
            ]
        else:
            mv = memoryview(buffer)
            values[ok_rows] = [
                bytes(mv[start:end]) if end > start else _EMPTY
                for start, end in zip(payload_starts, payload_ends)
            ]
    return statuses, values


def cut_frame_bounds(offsets, limit: int) -> list[int]:
    """Greedy first-fit cut over a cumulative byte-offset column.

    Returns message indices ``[0, b1, ..., n]`` such that each
    ``[b_k, b_{k+1})`` span fits in ``limit`` payload bytes (a single
    over-limit message rides alone), matching
    :func:`repro.net.packets._pack` boundaries exactly.  One
    ``searchsorted`` per emitted frame instead of a size check per
    message.
    """
    n = len(offsets) - 1
    bounds = [0]
    if n == 0:
        return bounds
    if np is not None and isinstance(offsets, np.ndarray):
        i = 0
        append = bounds.append
        searchsorted = np.searchsorted
        while i < n:
            j = int(searchsorted(offsets, offsets[i] + limit, side="right")) - 1
            if j <= i:
                j = i + 1
            append(j)
            i = j
        return bounds
    i = 0
    while i < n:
        j = i + 1
        cap = offsets[i] + limit
        while j < n and offsets[j + 1] <= cap:
            j += 1
        bounds.append(j)
        i = j
    return bounds


def frames_for_response_columns(
    statuses: list[int],
    values: list[bytes | None],
    sizes: list[int] | None = None,
    mtu: int = ETHERNET_MTU,
) -> list[Frame]:
    """Columnar replacement for ``frames_for_responses``.

    One window encode plus one cumulative-sum MTU cut; each frame payload
    is a slice of the shared buffer.  Byte-identical to the legacy
    per-``Response`` packing.
    """
    buffer, offsets = encode_response_window(statuses, values, sizes)
    bounds = cut_frame_bounds(offsets, mtu)
    mv = memoryview(buffer)
    return [
        Frame(bytes(mv[offsets[a] : offsets[b]]), query_count=b - a)
        for a, b in zip(bounds, bounds[1:])
    ]


def chunk_response_payloads(
    buffer: bytearray,
    offsets,
    ranges: list[tuple[int, int]],
    max_payload: int,
) -> list[bytes]:
    """Cut one peer's responses into datagram payloads.

    ``ranges`` are ``[start, stop)`` index spans into the window's
    response columns, in the peer's arrival order (one span per datagram
    the peer sent).  Payload boundaries match
    :func:`repro.server._chunk_responses` over the concatenated span:
    greedy fill up to ``max_payload``, a single larger response rides
    alone.  Each returned payload is a join of buffer slices — responses
    are never re-encoded.
    """
    mv = memoryview(buffer)
    payloads: list[bytes] = []
    parts: list[memoryview] = []
    size = 0
    use_np = np is not None and isinstance(offsets, np.ndarray)
    for a, b in ranges:
        i = a
        while i < b:
            budget = max_payload - size
            if use_np:
                j = int(np.searchsorted(offsets, offsets[i] + budget, side="right")) - 1
            else:
                j = i
                cap = offsets[i] + budget
                while j < b and offsets[j + 1] <= cap:
                    j += 1
            j = min(j, b)
            if j <= i:
                if parts:
                    payloads.append(b"".join(parts))
                    parts, size = [], 0
                    continue
                j = i + 1  # single response larger than the bound
            parts.append(mv[offsets[i] : offsets[j]])
            size += int(offsets[j] - offsets[i])
            i = j
    if parts:
        payloads.append(b"".join(parts))
    return payloads
