"""Simulated NIC with RX/TX rings and simple line-rate accounting.

The RV task drains the RX ring; the SD task fills the TX ring.  Wire-time
accounting lets experiments check that the 10 GbE link is not the bottleneck
(the paper explicitly batches to keep it off the critical path).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.packets import Frame


@dataclass
class NICStats:
    """Frame/byte counters for one NIC."""

    rx_frames: int = 0
    rx_bytes: int = 0
    tx_frames: int = 0
    tx_bytes: int = 0
    rx_dropped: int = 0


class SimulatedNIC:
    """A 10 GbE-class NIC with bounded rings.

    Parameters
    ----------
    line_rate_gbps:
        Link speed, used for wire-time estimates only.
    ring_size:
        RX ring capacity in frames; overflow drops (counted), as a real NIC
        would when the host cannot keep up.
    """

    def __init__(self, line_rate_gbps: float = 10.0, ring_size: int = 4096):
        if line_rate_gbps <= 0 or ring_size <= 0:
            raise ConfigurationError("line rate and ring size must be positive")
        self._line_rate_bytes_ns = line_rate_gbps / 8.0  # Gb/s -> bytes/ns
        self._ring_size = ring_size
        self._rx: deque[Frame] = deque()
        self._tx: deque[Frame] = deque()
        self.stats = NICStats()

    # ------------------------------------------------------------------- RX

    def deliver(self, frames: list[Frame]) -> int:
        """Client side injects frames into the RX ring; returns accepted count."""
        accepted = 0
        for frame in frames:
            if len(self._rx) >= self._ring_size:
                self.stats.rx_dropped += 1
                continue
            self._rx.append(frame)
            self.stats.rx_frames += 1
            self.stats.rx_bytes += frame.wire_bytes
            accepted += 1
        return accepted

    def receive(self, max_frames: int | None = None) -> list[Frame]:
        """RV task: drain up to ``max_frames`` from the RX ring."""
        budget = len(self._rx) if max_frames is None else min(max_frames, len(self._rx))
        return [self._rx.popleft() for _ in range(budget)]

    @property
    def rx_pending(self) -> int:
        return len(self._rx)

    # ------------------------------------------------------------------- TX

    def send(self, frames: list[Frame]) -> None:
        """SD task: queue frames for transmission."""
        for frame in frames:
            self._tx.append(frame)
            self.stats.tx_frames += 1
            self.stats.tx_bytes += frame.wire_bytes

    def drain_tx(self) -> list[Frame]:
        """Test/client helper: collect everything 'on the wire'."""
        out = list(self._tx)
        self._tx.clear()
        return out

    # ------------------------------------------------------------- accounting

    def wire_time_ns(self, total_bytes: int) -> float:
        """Time the link needs to carry ``total_bytes``."""
        return total_bytes / self._line_rate_bytes_ns
