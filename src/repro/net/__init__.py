"""Simulated network substrate: Ethernet/UDP frames and a batching NIC.

Stands in for the Intel 82599 10 GbE NIC of the paper's testbed.  Queries
and responses are batched into Ethernet frames "as many as possible"
(Section V-A) so that per-packet costs amortise; the RV and SD tasks consume
and produce :class:`Frame` objects through :class:`SimulatedNIC` rings.
"""

from repro.net.nic import NICStats, SimulatedNIC
from repro.net.packets import (
    ETHERNET_MTU,
    FRAME_HEADER_BYTES,
    Frame,
    frames_for_queries,
    frames_for_responses,
)
from repro.net.wire import (
    QueryColumns,
    WindowParseError,
    chunk_response_payloads,
    cut_frame_bounds,
    decode_payload,
    decode_window,
    encode_response_window,
    frames_for_response_columns,
)

__all__ = [
    "ETHERNET_MTU",
    "FRAME_HEADER_BYTES",
    "Frame",
    "NICStats",
    "QueryColumns",
    "SimulatedNIC",
    "WindowParseError",
    "chunk_response_payloads",
    "cut_frame_bounds",
    "decode_payload",
    "decode_window",
    "encode_response_window",
    "frames_for_queries",
    "frames_for_response_columns",
    "frames_for_responses",
]
