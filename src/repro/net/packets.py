"""Ethernet/UDP frame model and query/response frame packing.

Frames carry an opaque payload produced by :mod:`repro.kv.protocol`; the
packing helpers fill each frame up to the MTU, matching the paper's setup
where "queries and their responses are batched in an Ethernet frame as many
as possible" (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kv.protocol import Query, Response, encode_queries, encode_responses

#: Standard Ethernet payload limit.
ETHERNET_MTU = 1500
#: Ethernet + IP + UDP header bytes accounted per frame.
FRAME_HEADER_BYTES = 14 + 20 + 8


@dataclass
class Frame:
    """One UDP-in-Ethernet frame with its payload bytes.

    ``query_count`` is bookkeeping for the RV cost model (per-frame costs
    are amortised over the queries inside).
    """

    payload: bytes
    query_count: int = 0

    @property
    def wire_bytes(self) -> int:
        """On-the-wire size including headers."""
        return FRAME_HEADER_BYTES + len(self.payload)


def frames_for_queries(queries: list[Query], mtu: int = ETHERNET_MTU) -> list[Frame]:
    """Pack queries into the minimum number of MTU-bounded frames.

    Greedy first-fit in arrival order (clients stream queries, they do not
    bin-pack).  A query whose wire size alone exceeds the MTU travels in a
    dedicated frame: one UDP datagram that the IP layer fragments
    transparently (production workloads carry values up to tens of
    kilobytes, e.g. Facebook's ETC).
    """
    return _pack(queries, encode_queries, mtu)


def frames_for_responses(responses: list[Response], mtu: int = ETHERNET_MTU) -> list[Frame]:
    """Pack responses into MTU-bounded frames (the SD task's output unit).

    Oversized responses get dedicated IP-fragmented frames, mirroring
    :func:`frames_for_queries`.
    """
    return _pack(responses, encode_responses, mtu)


def _pack(messages, encode, mtu: int) -> list[Frame]:
    """Greedy first-fit frame packing over per-message encodings.

    Each message is encoded exactly once; its encoded length doubles as
    the wire-size probe, and frame payloads are joins of the encodings
    already in hand (the codecs are plain per-message concatenations, so
    this is byte-identical to encoding each frame's group in one call).
    """
    frames: list[Frame] = []
    parts: list[bytes] = []
    current_bytes = 0

    def flush() -> None:
        nonlocal parts, current_bytes
        if parts:
            frames.append(Frame(b"".join(parts), query_count=len(parts)))
            parts = []
            current_bytes = 0

    for message in messages:
        encoded = encode((message,))
        size = len(encoded)
        if size > mtu:
            flush()
            frames.append(Frame(encoded, query_count=1))
            continue
        if current_bytes + size > mtu:
            flush()
        parts.append(encoded)
        current_bytes += size
    flush()
    return frames
