"""Ethernet/UDP frame model and query/response frame packing.

Frames carry an opaque payload produced by :mod:`repro.kv.protocol`; the
packing helpers fill each frame up to the MTU, matching the paper's setup
where "queries and their responses are batched in an Ethernet frame as many
as possible" (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kv.protocol import Query, Response, encode_queries, encode_responses

#: Standard Ethernet payload limit.
ETHERNET_MTU = 1500
#: Ethernet + IP + UDP header bytes accounted per frame.
FRAME_HEADER_BYTES = 14 + 20 + 8


@dataclass
class Frame:
    """One UDP-in-Ethernet frame with its payload bytes.

    ``query_count`` is bookkeeping for the RV cost model (per-frame costs
    are amortised over the queries inside).
    """

    payload: bytes
    query_count: int = 0

    @property
    def wire_bytes(self) -> int:
        """On-the-wire size including headers."""
        return FRAME_HEADER_BYTES + len(self.payload)


def frames_for_queries(queries: list[Query], mtu: int = ETHERNET_MTU) -> list[Frame]:
    """Pack queries into the minimum number of MTU-bounded frames.

    Greedy first-fit in arrival order (clients stream queries, they do not
    bin-pack).  A query whose wire size alone exceeds the MTU travels in a
    dedicated frame: one UDP datagram that the IP layer fragments
    transparently (production workloads carry values up to tens of
    kilobytes, e.g. Facebook's ETC).
    """
    return _pack(queries, encode_queries, mtu)


def frames_for_responses(responses: list[Response], mtu: int = ETHERNET_MTU) -> list[Frame]:
    """Pack responses into MTU-bounded frames (the SD task's output unit).

    Oversized responses get dedicated IP-fragmented frames, mirroring
    :func:`frames_for_queries`.
    """
    return _pack(responses, encode_responses, mtu)


def _pack(messages, encode, mtu: int) -> list[Frame]:
    frames: list[Frame] = []
    current: list = []
    current_bytes = 0

    def flush() -> None:
        nonlocal current, current_bytes
        if current:
            frames.append(Frame(encode(current), query_count=len(current)))
            current = []
            current_bytes = 0

    for message in messages:
        size = message.wire_size
        if size > mtu:
            flush()
            frames.append(Frame(encode([message]), query_count=1))
            continue
        if current_bytes + size > mtu:
            flush()
        current.append(message)
        current_bytes += size
    flush()
    return frames
