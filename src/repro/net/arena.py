"""Shared-memory ring arenas and columnar block codecs for the
process-per-shard data plane.

The procshard backend (:mod:`repro.engine.procshard`) moves each batch's
shard sub-batches between the router process and its shard workers through
``multiprocessing.shared_memory`` segments instead of pickled queues — the
same "columns + byte arena" shapes the zero-copy wire plane uses
(:mod:`repro.net.wire`), so nothing on the data plane ever pickles a
query or a response.  Three pieces live here:

* :class:`ShmRing` — a single-producer/single-consumer byte ring over one
  shared-memory segment.  Messages are length-prefixed and stream through
  the ring in chunks, so a message larger than the ring's capacity still
  passes (the reader consumes while the writer produces); both sides
  spin-then-sleep and can watch an ``abort`` predicate so a dead peer
  turns into an exception instead of a hang.
* :func:`encode_query_block` / :func:`decode_query_block` — one shard
  sub-batch as header columns plus a byte arena: ``opcode`` u8 column,
  ``key_len``/``value_len`` u32 columns, then every key and every value
  back to back.  Decoding reproduces the
  :class:`~repro.net.wire.QueryColumns` shape (NumPy length columns
  attached when available) so the worker's
  :class:`~repro.engine.plane.BatchPlane` keeps its mask fast paths.
* :func:`encode_response_block` / :func:`decode_response_block` — one
  sub-batch's responses as a WR size column followed by the exact byte
  stream :func:`~repro.net.wire.encode_response_window` produces (status
  byte + value-length header + payload per row) — the framer is *reused*,
  not reimplemented, so worker response bytes are the same bytes the
  server would put on the wire.

Memory-ordering note: the ring's head/tail counters are aligned 8-byte
words written with single ``pack_into`` stores; CPython's interpreter
overhead plus x86-TSO store ordering make the publish-after-copy
discipline safe in practice.  This is a data-plane for CPython processes
on one host, not a general lock-free library.
"""

from __future__ import annotations

import secrets
import struct
import time
from multiprocessing import shared_memory

from repro.errors import ReproError
from repro.kv.protocol import QueryType
from repro.net.wire import (
    QueryColumns,
    RESPONSE_HEADER_BYTES,
    decode_response_window,
    encode_response_window,
)

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Opcode -> QueryType, indexable by raw opcode (mirrors the wire table).
_QTYPE_BY_OP = (None, QueryType.GET, QueryType.SET, QueryType.DELETE)

#: ``id(QueryType) -> raw opcode``.  Keying by member identity skips both
#: the enum's ``.value`` descriptor and its Python-level ``__hash__`` —
#: ``id()`` and int hashing stay in C, and enum members are singletons so
#: identity is a sound key.  The router maps a whole window's qtypes
#: every batch, so the per-row delta is the point.
_OP_BY_QTYPE_ID = {id(qtype): qtype.value for qtype in QueryType}

#: Ring header: write counter (u64 @0), read counter (u64 @16, separate
#: cache line would be nicer but 16 keeps the header compact), closed
#: flag (u8 @32), queue-depth high-water mark (u64 @40, writer-updated so
#: the depth of worker-written rings is visible to the router).  Data
#: starts at 64.
_RING_HEADER = 64
_WRITE_OFF = 0
_READ_OFF = 16
_CLOSED_OFF = 32
_HW_OFF = 40

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

#: Default per-direction ring capacity.
DEFAULT_RING_BYTES = 1 << 20

_EMPTY = b""


class RingClosedError(ReproError):
    """The peer closed the ring (or its process died) mid-transfer."""


class ShmRing:
    """A length-prefixed SPSC byte ring over one shared-memory segment.

    One side calls :meth:`send`, the other :meth:`recv`; each ring is
    unidirectional.  The creating side owns the segment (it unlinks);
    attached sides only close.  Counters are monotonically increasing
    byte offsets — ``write - read`` is the queue depth in bytes.
    """

    __slots__ = ("shm", "capacity", "_buf", "_owner", "stall_ns")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self.shm = shm
        self.capacity = shm.size - _RING_HEADER
        self._buf = shm.buf
        self._owner = owner
        #: Nanoseconds this side spent paused while the ring was full
        #: (sender backpressure) — a local, per-process accumulator.
        self.stall_ns = 0

    # ----------------------------------------------------------- lifecycle

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES, name: str | None = None):
        if name is None:
            name = f"repro-ring-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=_RING_HEADER + capacity
        )
        shm.buf[:_RING_HEADER] = b"\x00" * _RING_HEADER
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str):
        # CPython registers *attached* segments with the resource tracker
        # too (bpo-39959), so a spawned worker's own tracker would unlink
        # the router's arena when the worker exits.  Suppress registration
        # for the duration of the attach (3.13's ``track=False``,
        # backported by patching): the router owns the segment and is the
        # only unlinker.
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _no_track(name, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _no_track
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        """Mark the ring closed and detach (unlink too when owner)."""
        try:
            self._buf[_CLOSED_OFF] = 1
        except (ValueError, TypeError):  # pragma: no cover - already detached
            pass
        self._buf = None
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - peer unlinked
                pass
            self._owner = False

    # ------------------------------------------------------------ counters

    def _read_counter(self, off: int) -> int:
        return _U64.unpack_from(self._buf, off)[0]

    def _write_counter(self, off: int, value: int) -> None:
        _U64.pack_into(self._buf, off, value)

    @property
    def closed(self) -> bool:
        buf = self._buf
        return buf is None or buf[_CLOSED_OFF] != 0

    @property
    def pending_bytes(self) -> int:
        """Bytes written but not yet consumed (the queue depth)."""
        if self._buf is None:
            return 0
        return self._read_counter(_WRITE_OFF) - self._read_counter(_READ_OFF)

    @property
    def high_water_bytes(self) -> int:
        """Deepest the queue has been since the last :meth:`take_high_water`.

        Maintained by the *writer* side inside the shared header, so the
        reader of a worker-written ring still sees the true mark.
        """
        if self._buf is None:
            return 0
        return self._read_counter(_HW_OFF)

    def take_high_water(self) -> int:
        """Read the high-water mark and re-arm it to the current depth.

        The reset races benignly with a concurrent writer update — both
        sides store whole u64 words, and a lost mark is re-established on
        the writer's next chunk.
        """
        if self._buf is None:
            return 0
        mark = self._read_counter(_HW_OFF)
        self._write_counter(_HW_OFF, self.pending_bytes)
        return mark

    # ---------------------------------------------------------------- wait

    @staticmethod
    def _pause(spins: int) -> None:
        # Spin-yield briefly for sub-100us handoffs, then sleep — and keep
        # escalating to 1 ms so a long-idle peer (a shard worker between
        # batches) costs ~1k wakeups/s, not 10k.  Busy rings reset spins on
        # every chunk, so the backoff never touches in-flight transfers.
        if spins < 200:
            time.sleep(0)
        elif spins < 2_000:
            time.sleep(0.0001)
        else:
            time.sleep(0.001)

    @staticmethod
    def _pause_idle(spins: int) -> None:
        # Deep backoff for a peer with *no work pending* (a shard worker
        # between windows).  On an oversubscribed host the default ladder's
        # 200 sched-yields per wait let every idle worker steal timeslices
        # from the router mid-split — the dominant loss on 1-core hosts —
        # so idle waits concede the core almost immediately.  The cost is
        # up to ~2 ms of wake latency on the *first* message after an idle
        # gap; double-buffered submit/collect pipelining avoids even that
        # by keeping the next window resident in the ring before the
        # worker finishes the current one.
        if spins < 4:
            time.sleep(0)
        elif spins < 64:
            time.sleep(0.0002)
        else:
            time.sleep(0.002)

    def _check(self, abort, deadline: float | None) -> None:
        if self.closed:
            raise RingClosedError("ring closed by peer")
        if abort is not None and abort():
            raise RingClosedError("ring peer died")
        if deadline is not None and time.monotonic() > deadline:
            raise RingClosedError("ring transfer timed out")

    # ---------------------------------------------------------------- send

    def send(self, *parts, timeout: float | None = None, abort=None) -> None:
        """Write one message (the concatenation of ``parts``) to the ring.

        Streams through the ring in chunks, so the message may exceed the
        ring capacity; blocks while the ring is full, raising
        :class:`RingClosedError` on close/abort/timeout.
        """
        total = sum(len(p) for p in parts)
        deadline = time.monotonic() + timeout if timeout is not None else None
        if len(parts) > 1 and total <= 0xFFFF:
            # Typical batch/reply messages are a handful of small column
            # parts; one join buys a single counter-publish ceremony
            # instead of one per part.  Large messages keep streaming so
            # they can exceed the ring capacity.
            self._write_chunked(_U32.pack(total) + b"".join(parts), abort, deadline)
            return
        self._write_chunked(_U32.pack(total), abort, deadline)
        for part in parts:
            if len(part):
                self._write_chunked(part, abort, deadline)

    def _write_chunked(self, data, abort, deadline) -> None:
        buf = self._buf
        cap = self.capacity
        mv = memoryview(data)
        if hasattr(mv, "cast") and mv.format != "B":
            mv = mv.cast("B")
        pos = 0
        n = len(mv)
        spins = 0
        write = self._read_counter(_WRITE_OFF)
        high_water = self._read_counter(_HW_OFF)
        while pos < n:
            read = self._read_counter(_READ_OFF)
            free = cap - (write - read)
            if free <= 0:
                self._check(abort, deadline)
                paused_at = time.perf_counter_ns()
                self._pause(spins)
                self.stall_ns += time.perf_counter_ns() - paused_at
                spins += 1
                continue
            spins = 0
            at = write % cap
            chunk = min(free, n - pos, cap - at)
            buf[_RING_HEADER + at : _RING_HEADER + at + chunk] = mv[pos : pos + chunk]
            pos += chunk
            write += chunk
            self._write_counter(_WRITE_OFF, write)
            depth = write - read
            if depth > high_water:
                high_water = depth
                self._write_counter(_HW_OFF, high_water)

    # ---------------------------------------------------------------- recv

    def recv(self, timeout: float | None = None, abort=None, idle: bool = False) -> bytes | None:
        """Read one message; ``None`` if no message started before timeout.

        Once a length prefix has been read the body read does not time
        out on its own (the writer is mid-message); abort/close still
        interrupt it.  ``idle=True`` waits for the *header* with the deep
        :meth:`_pause_idle` backoff — for receivers that expect long gaps
        between messages and should not poll a shared core while waiting;
        the body read always uses the hot ladder (the writer is actively
        streaming once a length prefix exists).
        """
        pause = self._pause_idle if idle else self._pause
        header = self._read_exact(4, timeout, abort, allow_timeout=True, pause=pause)
        if header is None:
            return None
        (length,) = _U32.unpack(header)
        if length == 0:
            return _EMPTY
        body = self._read_exact(length, None, abort, allow_timeout=False)
        return bytes(body)

    def _read_exact(self, n: int, timeout, abort, allow_timeout: bool, pause=None):
        buf = self._buf
        cap = self.capacity
        out = bytearray(n)
        pos = 0
        spins = 0
        deadline = time.monotonic() + timeout if timeout is not None else None
        read = self._read_counter(_READ_OFF)
        if pause is None:
            pause = self._pause
        while pos < n:
            avail = self._read_counter(_WRITE_OFF) - read
            if avail <= 0:
                if allow_timeout and pos == 0 and deadline is not None:
                    if time.monotonic() > deadline:
                        return None
                    if self.closed or (abort is not None and abort()):
                        raise RingClosedError("ring closed by peer")
                else:
                    self._check(abort, deadline if pos == 0 else None)
                pause(spins)
                spins += 1
                continue
            spins = 0
            at = read % cap
            chunk = min(avail, n - pos, cap - at)
            out[pos : pos + chunk] = buf[_RING_HEADER + at : _RING_HEADER + at + chunk]
            pos += chunk
            read += chunk
            self._write_counter(_READ_OFF, read)
        return out


# --------------------------------------------------------------- query block


def encode_query_block(qtypes, keys, values, rows=None) -> list:
    """One shard sub-batch as columns + arena; returns buffer parts.

    ``qtypes``/``keys``/``values`` are whole-batch columns (the plane's);
    ``rows`` selects the sub-batch (``None`` = all rows).  Layout::

        u32 n | u8 opcode[n] | u32 key_len[n] | u32 value_len[n]
              | keys arena | values arena

    Returned as a list of buffer parts suitable for ``ShmRing.send`` —
    the arena is never copied into one intermediate message buffer.
    """
    if rows is None:
        sub_keys = keys if isinstance(keys, list) else list(keys)
        sub_values = values if isinstance(values, list) else list(values)
        ops = bytes(q.value for q in qtypes)
    else:
        sub_keys = [keys[i] for i in rows]
        sub_values = [values[i] for i in rows]
        ops = bytes(qtypes[i].value for i in rows)
    n = len(sub_keys)
    if np is not None:
        klens = np.fromiter(map(len, sub_keys), dtype=np.uint32, count=n).tobytes()
        vlens = np.fromiter(map(len, sub_values), dtype=np.uint32, count=n).tobytes()
    else:
        klens = struct.pack(f"<{n}I", *map(len, sub_keys))
        vlens = struct.pack(f"<{n}I", *map(len, sub_values))
    return [
        _U32.pack(n),
        ops,
        klens,
        vlens,
        b"".join(sub_keys),
        b"".join(sub_values),
    ]


class QueryBlockColumns:
    """Whole-batch gather columns, precomputed once per window.

    The router splits one batch across ``num_shards`` workers; building
    per-row Python lists for every shard costs O(rows) interpreter work
    per shard.  This precomputes NumPy object/length columns for the whole
    batch so each shard's block is a handful of fancy-indexed gathers —
    :meth:`encode` with a row array is byte-identical to
    :func:`encode_query_block` with the same rows.

    Only constructed when NumPy is present; numpy-less installs keep the
    per-row :func:`encode_query_block` path.
    """

    __slots__ = ("size", "_keys", "_values", "_ops", "_klens", "_vlens", "_no_values")

    def __init__(self, qtypes, keys, values, opcodes=None, key_lens=None, value_lens=None):
        n = len(keys)
        self.size = n
        self._keys = keys if isinstance(keys, list) else list(keys)
        if opcodes is not None:
            self._ops = np.ascontiguousarray(opcodes, dtype=np.uint8)
        else:
            self._ops = np.frombuffer(
                bytes(map(_OP_BY_QTYPE_ID.__getitem__, map(id, qtypes))),
                dtype=np.uint8,
            )
        if key_lens is not None:
            self._klens = np.ascontiguousarray(key_lens, dtype="<u4")
        else:
            self._klens = np.fromiter(map(len, keys), dtype="<u4", count=n)
        # A window with no value bytes at all (the GET-heavy common case)
        # skips the per-row value-length pass and the value-arena joins
        # outright — the zero column and empty arena are byte-identical
        # to what the general path emits.  ``any`` short-circuits on the
        # first SET row, so write-heavy windows pay almost nothing.
        self._no_values = not any(values)
        if self._no_values:
            self._values = None
            self._vlens = np.zeros(n, dtype="<u4")
        else:
            self._values = values if isinstance(values, list) else list(values)
            if value_lens is not None:
                self._vlens = np.ascontiguousarray(value_lens, dtype="<u4")
            else:
                self._vlens = np.fromiter(map(len, values), dtype="<u4", count=n)

    def encode(self, rows=None) -> list:
        """Buffer parts for one shard's sub-batch (``rows=None`` = all)."""
        if rows is None:
            return [
                _U32.pack(self.size),
                self._ops.tobytes(),
                self._klens.tobytes(),
                self._vlens.tobytes(),
                b"".join(self._keys),
                _EMPTY if self._no_values else b"".join(self._values),
            ]
        rows_l = rows.tolist() if hasattr(rows, "tolist") else list(rows)
        return [
            _U32.pack(len(rows_l)),
            self._ops[rows].tobytes(),
            self._klens[rows].tobytes(),
            self._vlens[rows].tobytes(),
            b"".join(map(self._keys.__getitem__, rows_l)),
            _EMPTY
            if self._no_values
            else b"".join(map(self._values.__getitem__, rows_l)),
        ]

    def sorted_spans(self, order) -> "SortedSpans":
        """Permute every column once for span-sliced per-shard encoding.

        ``order`` is the stable shard argsort of the whole window; each
        shard's sub-batch is then the contiguous span ``[b, e)`` of the
        sorted columns, so :meth:`SortedSpans.encode` is pure zero-copy
        slicing — byte-identical to ``encode(order[b:e])`` at a quarter
        of the gather cost.
        """
        return SortedSpans(self, order)


class SortedSpans:
    """One window's columns in shard order; see ``sorted_spans``."""

    __slots__ = ("_keys", "_values", "_ops", "_klens", "_vlens", "_no_values")

    def __init__(self, cols: QueryBlockColumns, order):
        order_l = order.tolist()
        self._keys = list(map(cols._keys.__getitem__, order_l))
        self._ops = cols._ops[order]
        self._klens = cols._klens[order]
        self._no_values = cols._no_values
        if cols._no_values:
            self._values = None
            self._vlens = cols._vlens  # all-zero: permutation-invariant
        else:
            self._values = list(map(cols._values.__getitem__, order_l))
            self._vlens = cols._vlens[order]

    def encode(self, begin: int, end: int) -> list:
        """Buffer parts for the shard owning sorted rows ``[begin, end)``."""
        return [
            _U32.pack(end - begin),
            self._ops[begin:end].tobytes(),
            self._klens[begin:end].tobytes(),
            self._vlens[begin:end].tobytes(),
            b"".join(self._keys[begin:end]),
            _EMPTY
            if self._no_values
            else b"".join(self._values[begin:end]),
        ]


def decode_query_block(buf, offset: int = 0) -> QueryColumns:
    """Decode one query block into :class:`~repro.net.wire.QueryColumns`.

    Key/value bytes are copied out of the arena (the store keeps keys far
    beyond the message's lifetime); the opcode/length columns are attached
    as NumPy arrays when available so the plane's mask subsets stay
    vectorized.
    """
    (n,) = _U32.unpack_from(buf, offset)
    ops_off = offset + 4
    klen_off = ops_off + n
    vlen_off = klen_off + 4 * n
    arena_off = vlen_off + 4 * n
    # A ``bytes`` buffer (what ShmRing.recv returns) slices straight to
    # new ``bytes`` objects — half the per-row cost of the
    # memoryview-then-copy dance, which only other buffer types need.
    direct = type(buf) is bytes
    mv = None if direct else memoryview(buf)
    if np is not None:
        klens = np.frombuffer(buf, dtype="<u4", count=n, offset=klen_off)
        vlens = np.frombuffer(buf, dtype="<u4", count=n, offset=vlen_off)
        klens_l = klens.tolist()
        vlens_l = vlens.tolist()
    else:
        klens_l = list(struct.unpack_from(f"<{n}I", buf, klen_off))
        vlens_l = list(struct.unpack_from(f"<{n}I", buf, vlen_off))
    keys: list[bytes] = []
    at = arena_off
    if direct:
        for length in klens_l:
            keys.append(buf[at : at + length])
            at += length
    else:
        for length in klens_l:
            keys.append(bytes(mv[at : at + length]))
            at += length
    if not any(vlens_l):
        # GET-heavy blocks carry no value bytes at all; skip the per-row
        # slice loop outright.
        values: list[bytes] = [_EMPTY] * n
    elif direct:
        values = []
        for length in vlens_l:
            values.append(buf[at : at + length] if length else _EMPTY)
            at += length
    else:
        values = []
        for length in vlens_l:
            values.append(bytes(mv[at : at + length]) if length else _EMPTY)
            at += length
    ops_b = buf[ops_off:klen_off] if direct else bytes(mv[ops_off:klen_off])
    qtypes = [_QTYPE_BY_OP[o] for o in ops_b]
    if np is None:
        return QueryColumns(qtypes, keys, values)
    return QueryColumns(
        qtypes,
        keys,
        values,
        np.frombuffer(ops_b, dtype=np.uint8),
        klens.astype(np.int64),
        vlens.astype(np.int64),
    )


# ------------------------------------------------------------ response block


def encode_response_block(statuses, values, sizes=None) -> list:
    """One sub-batch's responses as a size column + the framer's bytes.

    Layout: ``u32 n | u32 size[n] | <encode_response_window bytes>``.
    The window bytes are produced by the wire plane's single-pass framer
    (:func:`~repro.net.wire.encode_response_window`) — byte-identical to
    what the server's TX path would emit for the same rows.
    """
    n = len(statuses)
    buffer, offsets = encode_response_window(statuses, values, sizes)
    if np is not None:
        if isinstance(offsets, np.ndarray):
            sizes_b = np.diff(offsets).astype(np.uint32).tobytes()
        else:
            sizes_b = np.fromiter(
                (offsets[i + 1] - offsets[i] for i in range(n)),
                dtype=np.uint32,
                count=n,
            ).tobytes()
    else:
        sizes_b = struct.pack(
            f"<{n}I", *(offsets[i + 1] - offsets[i] for i in range(n))
        )
    return [_U32.pack(n), sizes_b, buffer]


def decode_response_block(buf, offset: int = 0):
    """Decode a response block into ``(statuses, values, sizes)`` columns.

    ``values[i]`` is the response payload for OK rows and ``None`` for
    value-less statuses — exactly the plane's ``read_values`` convention,
    so the router can scatter the columns straight into its outer plane.
    """
    (n,) = _U32.unpack_from(buf, offset)
    sizes_off = offset + 4
    window_off = sizes_off + 4 * n
    hdr = RESPONSE_HEADER_BYTES
    mv = memoryview(buf)
    if np is not None:
        sizes_arr = np.frombuffer(buf, dtype="<u4", count=n, offset=sizes_off)
        sizes = sizes_arr.astype(np.int64).tolist()
    else:
        sizes = list(struct.unpack_from(f"<{n}I", buf, sizes_off))
    statuses: list[int] = []
    values: list[bytes | None] = []
    at = window_off
    for size in sizes:
        status = buf[at]
        statuses.append(status)
        if size > hdr:
            values.append(bytes(mv[at + hdr : at + size]))
        else:
            # A value-less header; OK-with-empty-value still decodes to
            # b"" because its size equals the bare header too — the
            # status distinguishes: only OK rows carry a read value.
            values.append(_EMPTY if status == 0 else None)
        at += size
    # Normalise: OK rows keep bytes (possibly b""), other rows are None.
    for i, status in enumerate(statuses):
        if status != 0:
            values[i] = None
    return statuses, values, sizes


def decode_response_columns(buf, offset: int = 0):
    """Vectorized :func:`decode_response_block`: NumPy column results.

    Returns ``(statuses, values, sizes)`` where ``statuses``/``sizes``
    are int64 arrays and ``values`` is an object array (``None`` for
    non-OK rows) — ready for fancy-indexed scatter into whole-batch
    response columns.  Falls back to the scalar decoder on numpy-less
    installs (lists come back instead of arrays).
    """
    if np is None:  # pragma: no cover - exercised only on numpy-less installs
        return decode_response_block(buf, offset)
    (n,) = _U32.unpack_from(buf, offset)
    sizes_off = offset + 4
    window_off = sizes_off + 4 * n
    sizes = np.frombuffer(buf, dtype="<u4", count=n, offset=sizes_off).astype(np.int64)
    statuses, values = decode_response_window(buf, sizes, window_off)
    return statuses, values, sizes
