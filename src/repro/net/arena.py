"""Shared-memory ring arenas and columnar block codecs for the
process-per-shard data plane.

The procshard backend (:mod:`repro.engine.procshard`) moves each batch's
shard sub-batches between the router process and its shard workers through
``multiprocessing.shared_memory`` segments instead of pickled queues — the
same "columns + byte arena" shapes the zero-copy wire plane uses
(:mod:`repro.net.wire`), so nothing on the data plane ever pickles a
query or a response.  Three pieces live here:

* :class:`ShmRing` — a single-producer/single-consumer byte ring over one
  shared-memory segment.  Messages are length-prefixed and stream through
  the ring in chunks, so a message larger than the ring's capacity still
  passes (the reader consumes while the writer produces); both sides
  spin-then-sleep and can watch an ``abort`` predicate so a dead peer
  turns into an exception instead of a hang.
* :func:`encode_query_block` / :func:`decode_query_block` — one shard
  sub-batch as header columns plus a byte arena: ``opcode`` u8 column,
  ``key_len``/``value_len`` u32 columns, then every key and every value
  back to back.  Decoding reproduces the
  :class:`~repro.net.wire.QueryColumns` shape (NumPy length columns
  attached when available) so the worker's
  :class:`~repro.engine.plane.BatchPlane` keeps its mask fast paths.
* :func:`encode_response_block` / :func:`decode_response_block` — one
  sub-batch's responses as a WR size column followed by the exact byte
  stream :func:`~repro.net.wire.encode_response_window` produces (status
  byte + value-length header + payload per row) — the framer is *reused*,
  not reimplemented, so worker response bytes are the same bytes the
  server would put on the wire.

Memory-ordering note: the ring's head/tail counters are aligned 8-byte
words written with single ``pack_into`` stores; CPython's interpreter
overhead plus x86-TSO store ordering make the publish-after-copy
discipline safe in practice.  This is a data-plane for CPython processes
on one host, not a general lock-free library.
"""

from __future__ import annotations

import secrets
import struct
import time
from multiprocessing import shared_memory

from repro.errors import ReproError
from repro.kv.protocol import QueryType
from repro.net.wire import QueryColumns, RESPONSE_HEADER_BYTES, encode_response_window

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None

#: Opcode -> QueryType, indexable by raw opcode (mirrors the wire table).
_QTYPE_BY_OP = (None, QueryType.GET, QueryType.SET, QueryType.DELETE)

#: Ring header: write counter (u64 @0), read counter (u64 @16, separate
#: cache line would be nicer but 16 keeps the header compact), closed
#: flag (u8 @32).  Data starts at 64.
_RING_HEADER = 64
_WRITE_OFF = 0
_READ_OFF = 16
_CLOSED_OFF = 32

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

#: Default per-direction ring capacity.
DEFAULT_RING_BYTES = 1 << 20

_EMPTY = b""


class RingClosedError(ReproError):
    """The peer closed the ring (or its process died) mid-transfer."""


class ShmRing:
    """A length-prefixed SPSC byte ring over one shared-memory segment.

    One side calls :meth:`send`, the other :meth:`recv`; each ring is
    unidirectional.  The creating side owns the segment (it unlinks);
    attached sides only close.  Counters are monotonically increasing
    byte offsets — ``write - read`` is the queue depth in bytes.
    """

    __slots__ = ("shm", "capacity", "_buf", "_owner")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self.shm = shm
        self.capacity = shm.size - _RING_HEADER
        self._buf = shm.buf
        self._owner = owner

    # ----------------------------------------------------------- lifecycle

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_BYTES, name: str | None = None):
        if name is None:
            name = f"repro-ring-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=_RING_HEADER + capacity
        )
        shm.buf[:_RING_HEADER] = b"\x00" * _RING_HEADER
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str):
        # CPython registers *attached* segments with the resource tracker
        # too (bpo-39959), so a spawned worker's own tracker would unlink
        # the router's arena when the worker exits.  Suppress registration
        # for the duration of the attach (3.13's ``track=False``,
        # backported by patching): the router owns the segment and is the
        # only unlinker.
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _no_track(name, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _no_track
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
        return cls(shm, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> None:
        """Mark the ring closed and detach (unlink too when owner)."""
        try:
            self._buf[_CLOSED_OFF] = 1
        except (ValueError, TypeError):  # pragma: no cover - already detached
            pass
        self._buf = None
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - peer unlinked
                pass
            self._owner = False

    # ------------------------------------------------------------ counters

    def _read_counter(self, off: int) -> int:
        return _U64.unpack_from(self._buf, off)[0]

    def _write_counter(self, off: int, value: int) -> None:
        _U64.pack_into(self._buf, off, value)

    @property
    def closed(self) -> bool:
        buf = self._buf
        return buf is None or buf[_CLOSED_OFF] != 0

    @property
    def pending_bytes(self) -> int:
        """Bytes written but not yet consumed (the queue depth)."""
        if self._buf is None:
            return 0
        return self._read_counter(_WRITE_OFF) - self._read_counter(_READ_OFF)

    # ---------------------------------------------------------------- wait

    @staticmethod
    def _pause(spins: int) -> None:
        # Spin-yield briefly for sub-100us handoffs, then sleep — and keep
        # escalating to 1 ms so a long-idle peer (a shard worker between
        # batches) costs ~1k wakeups/s, not 10k.  Busy rings reset spins on
        # every chunk, so the backoff never touches in-flight transfers.
        if spins < 200:
            time.sleep(0)
        elif spins < 2_000:
            time.sleep(0.0001)
        else:
            time.sleep(0.001)

    def _check(self, abort, deadline: float | None) -> None:
        if self.closed:
            raise RingClosedError("ring closed by peer")
        if abort is not None and abort():
            raise RingClosedError("ring peer died")
        if deadline is not None and time.monotonic() > deadline:
            raise RingClosedError("ring transfer timed out")

    # ---------------------------------------------------------------- send

    def send(self, *parts, timeout: float | None = None, abort=None) -> None:
        """Write one message (the concatenation of ``parts``) to the ring.

        Streams through the ring in chunks, so the message may exceed the
        ring capacity; blocks while the ring is full, raising
        :class:`RingClosedError` on close/abort/timeout.
        """
        total = sum(len(p) for p in parts)
        deadline = time.monotonic() + timeout if timeout is not None else None
        self._write_chunked(_U32.pack(total), abort, deadline)
        for part in parts:
            if len(part):
                self._write_chunked(part, abort, deadline)

    def _write_chunked(self, data, abort, deadline) -> None:
        buf = self._buf
        cap = self.capacity
        mv = memoryview(data)
        if hasattr(mv, "cast") and mv.format != "B":
            mv = mv.cast("B")
        pos = 0
        n = len(mv)
        spins = 0
        write = self._read_counter(_WRITE_OFF)
        while pos < n:
            free = cap - (write - self._read_counter(_READ_OFF))
            if free <= 0:
                self._check(abort, deadline)
                self._pause(spins)
                spins += 1
                continue
            spins = 0
            at = write % cap
            chunk = min(free, n - pos, cap - at)
            buf[_RING_HEADER + at : _RING_HEADER + at + chunk] = mv[pos : pos + chunk]
            pos += chunk
            write += chunk
            self._write_counter(_WRITE_OFF, write)

    # ---------------------------------------------------------------- recv

    def recv(self, timeout: float | None = None, abort=None) -> bytes | None:
        """Read one message; ``None`` if no message started before timeout.

        Once a length prefix has been read the body read does not time
        out on its own (the writer is mid-message); abort/close still
        interrupt it.
        """
        header = self._read_exact(4, timeout, abort, allow_timeout=True)
        if header is None:
            return None
        (length,) = _U32.unpack(header)
        if length == 0:
            return _EMPTY
        body = self._read_exact(length, None, abort, allow_timeout=False)
        return bytes(body)

    def _read_exact(self, n: int, timeout, abort, allow_timeout: bool):
        buf = self._buf
        cap = self.capacity
        out = bytearray(n)
        pos = 0
        spins = 0
        deadline = time.monotonic() + timeout if timeout is not None else None
        read = self._read_counter(_READ_OFF)
        while pos < n:
            avail = self._read_counter(_WRITE_OFF) - read
            if avail <= 0:
                if allow_timeout and pos == 0 and deadline is not None:
                    if time.monotonic() > deadline:
                        return None
                    if self.closed or (abort is not None and abort()):
                        raise RingClosedError("ring closed by peer")
                else:
                    self._check(abort, deadline if pos == 0 else None)
                self._pause(spins)
                spins += 1
                continue
            spins = 0
            at = read % cap
            chunk = min(avail, n - pos, cap - at)
            out[pos : pos + chunk] = buf[_RING_HEADER + at : _RING_HEADER + at + chunk]
            pos += chunk
            read += chunk
            self._write_counter(_READ_OFF, read)
        return out


# --------------------------------------------------------------- query block


def encode_query_block(qtypes, keys, values, rows=None) -> list:
    """One shard sub-batch as columns + arena; returns buffer parts.

    ``qtypes``/``keys``/``values`` are whole-batch columns (the plane's);
    ``rows`` selects the sub-batch (``None`` = all rows).  Layout::

        u32 n | u8 opcode[n] | u32 key_len[n] | u32 value_len[n]
              | keys arena | values arena

    Returned as a list of buffer parts suitable for ``ShmRing.send`` —
    the arena is never copied into one intermediate message buffer.
    """
    if rows is None:
        sub_keys = keys if isinstance(keys, list) else list(keys)
        sub_values = values if isinstance(values, list) else list(values)
        ops = bytes(q.value for q in qtypes)
    else:
        sub_keys = [keys[i] for i in rows]
        sub_values = [values[i] for i in rows]
        ops = bytes(qtypes[i].value for i in rows)
    n = len(sub_keys)
    if np is not None:
        klens = np.fromiter(map(len, sub_keys), dtype=np.uint32, count=n).tobytes()
        vlens = np.fromiter(map(len, sub_values), dtype=np.uint32, count=n).tobytes()
    else:
        klens = struct.pack(f"<{n}I", *map(len, sub_keys))
        vlens = struct.pack(f"<{n}I", *map(len, sub_values))
    return [
        _U32.pack(n),
        ops,
        klens,
        vlens,
        b"".join(sub_keys),
        b"".join(sub_values),
    ]


def decode_query_block(buf, offset: int = 0) -> QueryColumns:
    """Decode one query block into :class:`~repro.net.wire.QueryColumns`.

    Key/value bytes are copied out of the arena (the store keeps keys far
    beyond the message's lifetime); the opcode/length columns are attached
    as NumPy arrays when available so the plane's mask subsets stay
    vectorized.
    """
    (n,) = _U32.unpack_from(buf, offset)
    ops_off = offset + 4
    klen_off = ops_off + n
    vlen_off = klen_off + 4 * n
    arena_off = vlen_off + 4 * n
    mv = memoryview(buf)
    ops = mv[ops_off:klen_off]
    if np is not None:
        klens = np.frombuffer(buf, dtype="<u4", count=n, offset=klen_off)
        vlens = np.frombuffer(buf, dtype="<u4", count=n, offset=vlen_off)
        klens_l = klens.tolist()
        vlens_l = vlens.tolist()
    else:
        klens_l = list(struct.unpack_from(f"<{n}I", buf, klen_off))
        vlens_l = list(struct.unpack_from(f"<{n}I", buf, vlen_off))
    keys: list[bytes] = []
    at = arena_off
    for length in klens_l:
        keys.append(bytes(mv[at : at + length]))
        at += length
    values: list[bytes] = []
    for length in vlens_l:
        values.append(bytes(mv[at : at + length]) if length else _EMPTY)
        at += length
    ops_b = bytes(ops)
    qtypes = [_QTYPE_BY_OP[o] for o in ops_b]
    if np is None:
        return QueryColumns(qtypes, keys, values)
    return QueryColumns(
        qtypes,
        keys,
        values,
        np.frombuffer(ops_b, dtype=np.uint8),
        klens.astype(np.int64),
        vlens.astype(np.int64),
    )


# ------------------------------------------------------------ response block


def encode_response_block(statuses, values, sizes=None) -> list:
    """One sub-batch's responses as a size column + the framer's bytes.

    Layout: ``u32 n | u32 size[n] | <encode_response_window bytes>``.
    The window bytes are produced by the wire plane's single-pass framer
    (:func:`~repro.net.wire.encode_response_window`) — byte-identical to
    what the server's TX path would emit for the same rows.
    """
    n = len(statuses)
    buffer, offsets = encode_response_window(statuses, values, sizes)
    if np is not None:
        if isinstance(offsets, np.ndarray):
            sizes_b = np.diff(offsets).astype(np.uint32).tobytes()
        else:
            sizes_b = np.fromiter(
                (offsets[i + 1] - offsets[i] for i in range(n)),
                dtype=np.uint32,
                count=n,
            ).tobytes()
    else:
        sizes_b = struct.pack(
            f"<{n}I", *(offsets[i + 1] - offsets[i] for i in range(n))
        )
    return [_U32.pack(n), sizes_b, buffer]


def decode_response_block(buf, offset: int = 0):
    """Decode a response block into ``(statuses, values, sizes)`` columns.

    ``values[i]`` is the response payload for OK rows and ``None`` for
    value-less statuses — exactly the plane's ``read_values`` convention,
    so the router can scatter the columns straight into its outer plane.
    """
    (n,) = _U32.unpack_from(buf, offset)
    sizes_off = offset + 4
    window_off = sizes_off + 4 * n
    hdr = RESPONSE_HEADER_BYTES
    mv = memoryview(buf)
    if np is not None:
        sizes_arr = np.frombuffer(buf, dtype="<u4", count=n, offset=sizes_off)
        sizes = sizes_arr.astype(np.int64).tolist()
    else:
        sizes = list(struct.unpack_from(f"<{n}I", buf, sizes_off))
    statuses: list[int] = []
    values: list[bytes | None] = []
    at = window_off
    for size in sizes:
        status = buf[at]
        statuses.append(status)
        if size > hdr:
            values.append(bytes(mv[at + hdr : at + size]))
        else:
            # A value-less header; OK-with-empty-value still decodes to
            # b"" because its size equals the bare header too — the
            # status distinguishes: only OK rows carry a read value.
            values.append(_EMPTY if status == 0 else None)
        at += size
    # Normalise: OK rows keep bytes (possibly b""), other rows are None.
    for i, status in enumerate(statuses):
        if status != 0:
            values[i] = None
    return statuses, values, sizes
