"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``plan WORKLOAD``
    Show the configuration DIDO's cost model picks for a workload label
    (e.g. ``K16-G95-S``), with the ranked alternatives.
``measure WORKLOAD [--config megakv] [--latency-us N]``
    Measure a configuration on the modelled APU (detailed simulator).
``figures [IDS ...]``
    Regenerate paper figures (e.g. ``fig11 fig15``; default: the quick ones)
    and print their tables.
``serve [--host H] [--port P] [--engine NAME] [--shards N]
[--batch-size N] [--coalesce-us US] [--wire columnar|legacy]``
    Run a real UDP key-value server backed by an adaptive DIDO system,
    with adaptive batch coalescing (size target or deadline) and either
    the zero-copy columnar wire plane or the legacy per-object codec.
``loadgen [--mode closed|open] [--workers N] [--depth N] [--duration S]``
    Drive a running server with the pipelined load generator and print
    (or ``--json``-dump) the achieved throughput and latency.
``workloads``
    List the 24 standard paper workloads.
``telemetry [--export jsonl|prom|summary]``
    Run a dynamic-workload simulation with telemetry enabled and export
    the collected trace/metrics.

``measure``, ``figures``, and ``serve`` also accept ``--telemetry-out
PATH``: telemetry is enabled for the run and a JSONL trace is written to
``PATH`` on exit.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager

from repro.analysis.reporting import Table
from repro.core.config_search import ConfigurationSearch
from repro.core.cost_model import CostModel
from repro.core.profiler import WorkloadProfile
from repro.engine import ENGINE_NAMES
from repro.errors import ReproError
from repro.hardware.specs import APU_A10_7850K
from repro.pipeline.executor import PipelineExecutor
from repro.pipeline.megakv import megakv_coupled_config
from repro.workloads.ycsb import STANDARD_WORKLOADS, standard_workload

#: Figures cheap enough for interactive use (the rest live in benchmarks/).
_QUICK_FIGURES = ("fig04", "fig05", "fig06", "fig11", "fig12")


def _profile(label: str) -> WorkloadProfile:
    return WorkloadProfile.from_spec(standard_workload(label))


@contextmanager
def _telemetry_to(path: str | None):
    """Enable telemetry for the wrapped command and export JSONL on exit."""
    if not path:
        yield
        return
    from repro.telemetry import configure, export_jsonl, get_telemetry

    configure(enabled=True)
    try:
        yield
    finally:
        records = export_jsonl(get_telemetry(), path)
        print(f"telemetry: wrote {records} records to {path}", file=sys.stderr)


def cmd_workloads(args: argparse.Namespace) -> int:
    table = Table("Standard workloads (paper Section V-A)", ["label", "key", "value", "GET", "distribution"])
    for spec in STANDARD_WORKLOADS:
        table.add(
            spec.label,
            spec.dataset.key_size,
            spec.dataset.value_size,
            f"{spec.get_ratio:.0%}",
            "zipf-0.99" if spec.skewed else "uniform",
        )
    print(table.render())
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    profile = _profile(args.workload)
    search = ConfigurationSearch(CostModel(APU_A10_7850K))
    ranked = search.rank(profile, args.latency_us * 1000.0)
    table = Table(
        f"Cost-model ranking for {args.workload}",
        ["rank", "est_MOPS", "pipeline"],
    )
    for i, entry in enumerate(ranked[: args.top], start=1):
        table.add(i, entry.throughput_mops, entry.config.label)
    print(table.render())
    print(f"\nchosen: {ranked[0].config.label}")
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    profile = _profile(args.workload)
    executor = PipelineExecutor(APU_A10_7850K)
    if args.config == "megakv":
        config = megakv_coupled_config()
        label = "Mega-KV (Coupled) static pipeline"
    else:
        search = ConfigurationSearch(CostModel(APU_A10_7850K))
        config = search.best(profile, args.latency_us * 1000.0).config
        label = "DIDO's chosen pipeline"
    m = executor.measure(config, profile, args.latency_us * 1000.0)
    print(f"{label}: {config.label}")
    table = Table(f"Measured on the modelled APU ({args.workload})", ["metric", "value"])
    table.add("throughput (MOPS)", m.throughput_mops)
    table.add("batch size", m.batch_size)
    table.add("period (us)", m.tmax_us)
    table.add("CPU utilisation", m.cpu_utilization)
    table.add("GPU utilisation", m.gpu_utilization)
    for stage in m.stages():
        table.add(f"stage {stage.label} (us)", stage.time_us)
    print(table.render())
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import experiments as X

    harness = X.Harness()
    wanted = args.ids or list(_QUICK_FIGURES)
    renderers = {
        "fig04": _render_fig04,
        "fig05": _render_fig05,
        "fig06": _render_fig06,
        "fig09": _render_fig09,
        "fig11": _render_fig11,
        "fig12": _render_fig12,
        "fig15": _render_fig15,
    }
    unknown = [w for w in wanted if w not in renderers]
    if unknown:
        print(f"unknown figures: {unknown}; available: {sorted(renderers)}", file=sys.stderr)
        return 2
    for fig in wanted:
        renderers[fig](harness)
        print()
    return 0


def _render_fig04(h) -> None:
    from repro.analysis.experiments import fig04_stage_times

    table = Table("Figure 4 — Mega-KV stage times (us)", ["dataset", "NP", "IN", "RSV"])
    for r in fig04_stage_times(h):
        table.add(r.dataset, r.np_us, r.in_us, r.rsv_us)
    print(table.render())


def _render_fig05(h) -> None:
    from repro.analysis.experiments import fig04_stage_times

    table = Table("Figure 5 — Mega-KV GPU utilisation", ["dataset", "gpu", "cpu"])
    for r in fig04_stage_times(h):
        table.add(r.dataset, r.gpu_utilization, r.cpu_utilization)
    print(table.render())


def _render_fig06(h) -> None:
    from repro.analysis.experiments import fig06_index_op_shares

    table = Table(
        "Figure 6 — GPU index-op time shares", ["insert_batch", "search", "insert", "delete"]
    )
    for r in fig06_index_op_shares(h):
        table.add(r.insert_batch, r.search_share, r.insert_share, r.delete_share)
    print(table.render())


def _render_fig09(h) -> None:
    from repro.analysis.experiments import fig09_cost_model_error

    table = Table("Figure 9 — cost model error", ["workload", "est", "meas", "err_%"])
    for r in fig09_cost_model_error(h):
        table.add(r.workload, r.estimated_mops, r.measured_mops, r.error * 100)
    print(table.render())


def _render_fig11(h) -> None:
    from repro.analysis.experiments import fig11_throughput

    table = Table(
        "Figure 11 — DIDO vs Mega-KV (Coupled)", ["workload", "megakv", "dido", "speedup"]
    )
    for r in fig11_throughput(h):
        table.add(r.workload, r.baseline_mops, r.dido_mops, r.speedup)
    print(table.render())


def _render_fig12(h) -> None:
    from repro.analysis.experiments import fig12_utilization

    table = Table(
        "Figure 12 — utilisation", ["workload", "dido_gpu", "megakv_gpu", "dido_cpu", "megakv_cpu"]
    )
    for r in fig12_utilization(h):
        table.add(r.workload, r.dido_gpu, r.megakv_gpu, r.dido_cpu, r.megakv_cpu)
    print(table.render())


def _render_fig15(h) -> None:
    from repro.analysis.experiments import fig15_work_stealing

    table = Table(
        "Figure 15 — work stealing", ["workload", "no_steal", "steal", "speedup"]
    )
    for r in fig15_work_stealing(h):
        table.add(r.workload, r.baseline_mops, r.technique_mops, r.speedup)
    print(table.render())


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.dido import DidoSystem
    from repro.server import DidoUDPServer

    system = DidoSystem(
        memory_bytes=args.memory_mb << 20,
        expected_objects=args.expected_objects,
        engine=args.engine,
        shards=args.shards,
        dedup=args.dedup,
        hot_cache=args.hot_cache,
        heap=args.heap,
        delta_index=args.delta_index,
    )
    server = DidoUDPServer(
        (args.host, args.port),
        system=system,
        batch_size=args.batch_size,
        coalesce_us=args.coalesce_us,
        wire=args.wire,
        drain_limit=args.drain_limit,
        pipeline_depth=args.pipeline_depth,
    )
    if args.cluster_node:
        return _serve_cluster_node(args, server)
    import signal

    # SIGTERM drains like Ctrl-C: the serve loop finishes its window, the
    # system closes (procshard workers shut down and every shared-memory
    # arena is unlinked) before the process exits.
    signal.signal(signal.SIGTERM, lambda *_: server.stop())
    host, port = server.address
    print(f"serving on {host}:{port} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.stop()
        system.close()
        print(f"\n{server.stats}")
    return 0


def _serve_cluster_node(args: argparse.Namespace, server) -> int:
    """Run one cluster member: the server wrapped in a control plane."""
    import signal

    from repro.cluster.manifest import ClusterManifest
    from repro.cluster.serving import ClusterNode

    if not args.cluster_manifest:
        print("error: --cluster-node requires --cluster-manifest", file=sys.stderr)
        return 2
    with open(args.cluster_manifest, encoding="utf-8") as handle:
        manifest = ClusterManifest.from_json(handle.read())
    node = ClusterNode(
        args.cluster_node,
        server,
        manifest,
        (args.host, args.cluster_control_port),
        gated=args.cluster_gated,
    )
    signal.signal(signal.SIGTERM, lambda *_: node.stop())
    host, port = server.address
    chost, cport = node.control_address
    print(
        f"cluster node {args.cluster_node} serving on {host}:{port} "
        f"(control {chost}:{cport}, epoch {manifest.epoch}"
        f"{', gated' if args.cluster_gated else ''})",
        flush=True,
    )
    try:
        node.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        node.stop()
        server.system.close()
        print(f"\n{server.stats}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Spawn and supervise a server fleet with live membership changes."""
    import signal

    from repro.cluster.serving import ClusterCoordinator

    serve_args: list[str] = []
    serve_args += ["--memory-mb", str(args.memory_mb)]
    serve_args += ["--expected-objects", str(args.expected_objects)]
    serve_args += ["--engine", args.engine]
    serve_args += ["--shards", str(args.shards)]
    serve_args += ["--batch-size", str(args.batch_size)]
    serve_args += ["--heap", args.heap]
    if args.delta_index:
        serve_args.append("--delta-index")
    if args.dedup:
        serve_args.append("--dedup")
    if args.hot_cache:
        serve_args.append("--hot-cache")
    coordinator = ClusterCoordinator(
        nodes=args.nodes,
        host=args.host,
        serve_args=serve_args,
        workdir=args.workdir,
        control_port=args.control_port,
    )
    # SIGTERM/SIGINT drain any in-flight migration (the membership lock)
    # and tear down every child before the coordinator exits.
    signal.signal(signal.SIGTERM, lambda *_: coordinator.shutdown())
    signal.signal(signal.SIGINT, lambda *_: coordinator.shutdown())
    coordinator.start()
    chost, cport = coordinator.control_address
    manifest = coordinator.manifest
    print(f"cluster of {args.nodes} up: control {chost}:{cport}, epoch 1")
    for name, info in sorted(manifest.nodes.items()):
        print(f"  {name}: data {info.host}:{info.port}, control :{info.control_port}")
    print("commands: repro-cluster control accepts manifest/status/"
          "add_node/remove_node/shutdown (newline-delimited JSON)", flush=True)
    try:
        coordinator.serve_forever()
    finally:
        coordinator.shutdown()
        print("cluster stopped")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.loadgen import WorkloadShape, run_loadgen

    shape = WorkloadShape(
        num_keys=args.num_keys,
        key_size=args.key_size,
        value_size=args.value_size,
        get_ratio=args.get_ratio,
        seed=args.seed,
    )
    if args.cluster:
        from repro.loadgen import run_cluster_loadgen

        host, _, port = args.cluster.rpartition(":")
        report = run_cluster_loadgen(
            (host or "127.0.0.1", int(port)),
            shape,
            mode=args.mode,
            queries=args.queries,
            workers=args.workers,
            depth=args.depth,
            duration_s=args.duration,
            rate_qps=args.rate,
            timeout_s=args.timeout,
            do_prefill=not args.no_prefill,
            max_payload=args.max_payload,
        )
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report)
        return 0
    report = run_loadgen(
        (args.host, args.port),
        shape,
        mode=args.mode,
        queries=args.queries,
        workers=args.workers,
        depth=args.depth,
        duration_s=args.duration,
        rate_qps=args.rate,
        timeout_s=args.timeout,
        do_prefill=not args.no_prefill,
        max_payload=args.max_payload,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report)
    return 0


#: Workload phases the ``telemetry`` demo cycles through — the same shifts
#: as ``examples/adaptive_pipeline.py``, guaranteed to trigger re-planning.
_TELEMETRY_PHASES = ("K8-G95-S", "K128-G95-S", "K8-G50-U")


def cmd_telemetry(args: argparse.Namespace) -> int:
    """Drive a dynamic workload through a live system and export telemetry."""
    from repro.core.dido import DidoSystem
    from repro.telemetry import (
        configure,
        console_summary,
        export_jsonl,
        get_telemetry,
        prometheus_text,
    )
    from repro.workloads.ycsb import QueryStream

    telemetry = configure(enabled=True)
    system = DidoSystem(
        memory_bytes=64 << 20,
        expected_objects=40_000,
        engine=args.engine,
        shards=args.shards,
        dedup=args.dedup,
        hot_cache=args.hot_cache,
        heap=args.heap,
        delta_index=args.delta_index,
    )
    for label in _TELEMETRY_PHASES:
        stream = QueryStream(standard_workload(label), num_keys=6_000, seed=3)
        for _ in range(args.batches):
            system.process(stream.next_batch(args.batch_size))
    if args.export == "jsonl":
        if args.out:
            records = export_jsonl(telemetry, args.out)
            print(f"wrote {records} records to {args.out}", file=sys.stderr)
        else:
            export_jsonl(telemetry, sys.stdout)
    elif args.export == "prom":
        text = prometheus_text(telemetry.registry)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote Prometheus export to {args.out}", file=sys.stderr)
        else:
            sys.stdout.write(text)
    else:
        print(console_summary(telemetry))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DIDO (ICDE 2017) reproduction: plan, measure, serve.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="list the 24 standard workloads")
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("plan", help="rank pipeline configurations for a workload")
    p.add_argument("workload", help="label like K16-G95-S")
    p.add_argument("--top", type=int, default=8, help="rows to show")
    p.add_argument("--latency-us", type=float, default=1000.0)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("measure", help="measure a configuration on the APU model")
    p.add_argument("workload")
    p.add_argument("--config", choices=("dido", "megakv"), default="dido")
    p.add_argument("--latency-us", type=float, default=1000.0)
    p.add_argument("--telemetry-out", metavar="PATH", help="write a JSONL telemetry trace")
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("ids", nargs="*", help=f"figure ids (default: {' '.join(_QUICK_FIGURES)})")
    p.add_argument("--telemetry-out", metavar="PATH", help="write a JSONL telemetry trace")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("serve", help="run a UDP key-value server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=11311)
    p.add_argument("--memory-mb", type=int, default=64)
    p.add_argument("--expected-objects", type=int, default=65536)
    p.add_argument(
        "--engine", choices=ENGINE_NAMES, default="auto",
        help="functional execution backend (default: auto)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition the store across N shards (default: 1)",
    )
    p.add_argument(
        "--batch-size", type=int, default=4096,
        help="dispatch a batch once it holds this many queries (default: 4096)",
    )
    p.add_argument(
        "--coalesce-us", type=float, default=None, metavar="US",
        help="coalescing deadline in microseconds (default: 2000)",
    )
    p.add_argument(
        "--wire", choices=("columnar", "legacy"), default="columnar",
        help="wire plane: columnar window decoder or legacy per-object codec",
    )
    p.add_argument(
        "--drain-limit", type=int, default=64,
        help="datagrams drained from the kernel per receive poll (default: 64)",
    )
    p.add_argument(
        "--pipeline-depth", type=int, default=None, metavar="N",
        help="windows in flight to the procshard workers (default: 2 when "
        "the engine supports pipelining, else 1; 1 disables overlap)",
    )
    p.add_argument(
        "--dedup", action="store_true",
        help="collapse duplicate GET runs per batch (skew-aware hot path)",
    )
    p.add_argument(
        "--hot-cache", action="store_true",
        help="attach the skew-gated versioned hot-key read cache",
    )
    p.add_argument(
        "--heap", choices=("log", "slab"), default="log",
        help="value heap: append-only log arena (default) or slab allocator",
    )
    p.add_argument(
        "--delta-index", action="store_true",
        help="absorb index updates in a delta table, merged in bulk at barriers",
    )
    p.add_argument("--telemetry-out", metavar="PATH", help="write a JSONL telemetry trace")
    cluster_group = p.add_argument_group("cluster membership (spawned by `repro cluster`)")
    cluster_group.add_argument(
        "--cluster-node", metavar="NAME", default=None,
        help="serve as cluster member NAME (requires --cluster-manifest)",
    )
    cluster_group.add_argument(
        "--cluster-manifest", metavar="PATH", default=None,
        help="JSON cluster manifest giving every node's addresses and arcs",
    )
    cluster_group.add_argument(
        "--cluster-control-port", type=int, default=0,
        help="TCP control-plane port (default: OS-assigned)",
    )
    cluster_group.add_argument(
        "--cluster-gated", action="store_true",
        help="start gated: redirect all client traffic until activated",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "cluster", help="spawn a ring-routed server fleet with live migration"
    )
    p.add_argument("--nodes", type=int, default=3, help="initial fleet size")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--control-port", type=int, default=0,
        help="coordinator TCP control port (default: OS-assigned)",
    )
    p.add_argument(
        "--workdir", default=None,
        help="directory for manifests and per-node logs (default: temp dir)",
    )
    p.add_argument("--memory-mb", type=int, default=64, help="per-node store budget")
    p.add_argument("--expected-objects", type=int, default=65536)
    p.add_argument(
        "--engine", choices=ENGINE_NAMES, default="auto",
        help="functional execution backend for every node (default: auto)",
    )
    p.add_argument("--shards", type=int, default=1, help="store shards per node")
    p.add_argument("--batch-size", type=int, default=4096)
    p.add_argument("--dedup", action="store_true")
    p.add_argument("--hot-cache", action="store_true")
    p.add_argument(
        "--heap", choices=("log", "slab"), default="log",
        help="value heap for every node (default: log)",
    )
    p.add_argument(
        "--delta-index", action="store_true",
        help="absorb index updates in a delta table on every node",
    )
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("loadgen", help="drive a running server with generated load")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=11311)
    p.add_argument(
        "--cluster", metavar="HOST:PORT", default=None,
        help="drive a whole cluster instead: control endpoint (coordinator "
        "or any node) to fetch the manifest from; requests are hash-split "
        "per node and all nodes are driven concurrently",
    )
    p.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed loop (windows in flight) or open loop (paced rate)",
    )
    p.add_argument("--workers", type=int, default=2, help="closed-loop workers")
    p.add_argument(
        "--depth", type=int, default=4,
        help="request datagrams in flight per closed-loop worker",
    )
    p.add_argument("--duration", type=float, default=2.0, help="run seconds")
    p.add_argument(
        "--rate", type=float, default=100_000.0,
        help="open-loop offered queries/second",
    )
    p.add_argument("--queries", type=int, default=65536, help="pre-encoded tape length")
    p.add_argument("--num-keys", type=int, default=2048)
    p.add_argument("--key-size", type=int, default=16)
    p.add_argument("--value-size", type=int, default=64)
    p.add_argument("--get-ratio", type=float, default=0.95)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--timeout", type=float, default=2.0, help="closed-loop window timeout")
    p.add_argument(
        "--max-payload",
        type=int,
        default=48 * 1024,
        help="request datagram size cap in bytes (1400 = one query "
        "datagram per Ethernet MTU)",
    )
    p.add_argument("--no-prefill", action="store_true", help="skip the SET prefill pass")
    p.add_argument("--json", action="store_true", help="emit the report as JSON")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "telemetry", help="run a dynamic-workload simulation and export telemetry"
    )
    p.add_argument(
        "--export", choices=("jsonl", "prom", "summary"), default="summary",
        help="output format (default: summary)",
    )
    p.add_argument("--out", metavar="PATH", help="write to PATH instead of stdout")
    p.add_argument("--batches", type=int, default=4, help="batches per workload phase")
    p.add_argument("--batch-size", type=int, default=1024, help="queries per batch")
    p.add_argument(
        "--engine", choices=ENGINE_NAMES, default="auto",
        help="functional execution backend (default: auto)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition the store across N shards (default: 1)",
    )
    p.add_argument(
        "--dedup", action="store_true",
        help="collapse duplicate GET runs per batch (skew-aware hot path)",
    )
    p.add_argument(
        "--hot-cache", action="store_true",
        help="attach the skew-gated versioned hot-key read cache",
    )
    p.add_argument(
        "--heap", choices=("log", "slab"), default="log",
        help="value heap: append-only log arena (default) or slab allocator",
    )
    p.add_argument(
        "--delta-index", action="store_true",
        help="absorb index updates in a delta table, merged in bulk at barriers",
    )
    p.set_defaults(func=cmd_telemetry)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _telemetry_to(getattr(args, "telemetry_out", None)):
            return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
