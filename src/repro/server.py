"""A real UDP server front-end for the DIDO store.

Everything else in this package simulates the NIC; this module binds an
actual UDP socket and speaks the package's binary protocol
(:mod:`repro.kv.protocol`), so the library runs as a usable key-value
service: one datagram in (a batch of queries), one or more datagrams out
(the responses), processed through the full adaptive pipeline.

The paper's system batches queries for the GPU; a network server front-end
does the same here with **adaptive batch coalescing**: queries accumulate
until either the batch-size target (``batch_size``) is reached or the
coalescing deadline (``coalesce_us``, measured from the first arrival)
expires — whichever comes first.  Under heavy traffic batches fill to the
target and the deadline never fires (maximum kernel efficiency); under
light traffic the deadline bounds latency and the pipeline sees partial
batches.  Queries beyond the target carry over to the next batch, and the
carry-over depth, batch fill ratio, and (on sharded stores) shard
imbalance are exported as gauges so the coalescing behaviour is observable
via ``repro telemetry``.

Usage::

    server = DidoUDPServer(("127.0.0.1", 0), system=DidoSystem(...))
    with server:
        server.start()          # background thread
        ...                     # clients talk to server.address
    # or blocking: server.serve_forever()

See :mod:`repro.client` for the matching client.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from dataclasses import dataclass

from repro.core.dido import DidoSystem
from repro.errors import ConfigurationError, ProtocolError
from repro.kv.protocol import (
    Query,
    Response,
    decode_queries,
    encode_responses,
)
from repro.telemetry import get_telemetry

logger = logging.getLogger("repro.server")

#: Largest datagram we attempt to receive (jumbo values are IP-fragmented).
MAX_DATAGRAM = 64 * 1024

#: How long the server waits to coalesce datagrams into one pipeline batch.
DEFAULT_BATCH_WINDOW_S = 0.002

#: Batch-size target: a batch is dispatched as soon as it holds this many
#: queries, even if the coalescing deadline has not expired.
DEFAULT_BATCH_SIZE = 4096

#: Responses per outgoing datagram are bounded by this payload size.
MAX_RESPONSE_PAYLOAD = 32 * 1024


@dataclass
class ServerStats:
    """Operational counters for one server."""

    datagrams_in: int = 0
    datagrams_out: int = 0
    queries: int = 0
    batches: int = 0
    protocol_errors: int = 0


class DidoUDPServer:
    """UDP front-end: datagrams of encoded queries in, responses out.

    Parameters
    ----------
    address:
        ``(host, port)`` to bind; port 0 picks a free port.
    system:
        The :class:`~repro.core.dido.DidoSystem` that processes batches; a
        default-sized one is created if omitted.
    batch_window_s:
        Coalescing deadline in seconds, measured from the first query of a
        batch; ``coalesce_us`` overrides it when given.
    engine:
        Functional execution backend for the default-created system (see
        :class:`~repro.pipeline.functional.FunctionalPipeline`); ignored
        when an explicit ``system`` is passed.
    batch_size:
        Dispatch a batch as soon as it holds this many queries (the
        adaptive cutoff); excess queries carry over to the next batch.
    coalesce_us:
        Coalescing deadline in microseconds (overrides ``batch_window_s``).
    shards:
        Shard count for the default-created system; ignored when an
        explicit ``system`` is passed.
    """

    def __init__(
        self,
        address: tuple[str, int] = ("127.0.0.1", 0),
        system: DidoSystem | None = None,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        engine=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        coalesce_us: float | None = None,
        shards: int = 1,
    ):
        if coalesce_us is not None:
            if coalesce_us < 0:
                raise ConfigurationError("coalesce deadline must be non-negative")
            batch_window_s = coalesce_us / 1e6
        if batch_window_s < 0:
            raise ConfigurationError("batch window must be non-negative")
        if batch_size < 1:
            raise ConfigurationError("batch size must be positive")
        self.system = system or DidoSystem(
            memory_bytes=64 << 20, expected_objects=65536, engine=engine, shards=shards
        )
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.bind(address)
        self._socket.settimeout(0.1)
        self._batch_window_s = batch_window_s
        self._batch_size = batch_size
        #: Queries received but not yet dispatched (the carry-over queue):
        #: ``(queries, peer)`` groups, oldest first.
        self._backlog: list[tuple[list[Query], tuple[str, int]]] = []
        self._running = threading.Event()
        self._thread: threading.Thread | None = None
        self.stats = ServerStats()

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._socket.getsockname()

    def __enter__(self) -> "DidoUDPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Serve on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise ConfigurationError("server already started")
        self._running.set()
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        logger.info("serving on %s:%d", *self.address)

    def stop(self) -> None:
        """Stop serving and close the socket."""
        self._running.clear()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - double close
            pass
        logger.info(
            "stopped: %d queries in %d batches, %d protocol errors",
            self.stats.queries,
            self.stats.batches,
            self.stats.protocol_errors,
        )

    def serve_forever(self) -> None:
        """Blocking serve loop (also the body of the background thread)."""
        self._running.set()
        while self._running.is_set():
            self._serve_one_window()

    # ------------------------------------------------------------- serving

    def _serve_one_window(self) -> None:
        """Coalesce one batch (size target or deadline) and process it.

        Accumulation starts from the carry-over backlog of the previous
        batch.  The deadline clock starts at the first query (whether
        carried over or freshly received), so a carried-over partial batch
        is never starved waiting for traffic that may not come.
        """
        pending = self._backlog
        self._backlog = []
        count = sum(len(queries) for queries, _ in pending)
        deadline = (
            time.monotonic() + self._batch_window_s if pending else None
        )
        while count < self._batch_size:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._socket.settimeout(max(remaining, 1e-4))
            try:
                payload, peer = self._socket.recvfrom(MAX_DATAGRAM)
            except socket.timeout:
                break
            except OSError:
                self._backlog = pending
                return  # socket closed under us during stop()
            self.stats.datagrams_in += 1
            try:
                queries = decode_queries(payload)
            except ProtocolError as exc:
                self.stats.protocol_errors += 1
                logger.warning("dropping undecodable datagram from %s: %s", peer, exc)
                telemetry = get_telemetry()
                if telemetry.enabled:
                    telemetry.registry.counter(
                        "repro_server_protocol_errors_total",
                        help="Datagrams dropped as unparseable",
                    ).inc()
                continue
            if queries:
                pending.append((queries, peer))
                count += len(queries)
            if deadline is None:
                deadline = time.monotonic() + self._batch_window_s
        self._socket.settimeout(0.1)
        if not pending:
            return
        batch = self._cut_batch(pending)
        self._process_window(batch)

    def _cut_batch(self, pending) -> list[tuple[list[Query], tuple[str, int]]]:
        """Take up to ``batch_size`` queries; the excess becomes backlog.

        A datagram straddling the cutoff is split — its tail queries keep
        their peer attribution and run first in the next batch, so each
        peer still sees its responses in submission order.
        """
        batch: list[tuple[list[Query], tuple[str, int]]] = []
        taken = 0
        for i, (queries, peer) in enumerate(pending):
            room = self._batch_size - taken
            if len(queries) <= room:
                batch.append((queries, peer))
                taken += len(queries)
            else:
                if room:
                    batch.append((queries[:room], peer))
                    taken += room
                self._backlog.append((queries[room:], peer))
                self._backlog.extend(pending[i + 1 :])
                break
        telemetry = get_telemetry()
        if telemetry.enabled:
            depth = sum(len(queries) for queries, _ in self._backlog)
            telemetry.registry.gauge(
                "repro_server_queue_depth",
                help="Queries carried over past the batch-size cutoff",
            ).set(depth)
            telemetry.registry.gauge(
                "repro_batch_fill_ratio",
                help="Dispatched batch size over the batch-size target",
            ).set(min(taken, self._batch_size) / self._batch_size)
        return batch

    def _process_window(self, pending) -> None:
        batch: list[Query] = []
        owners: list[tuple[str, int]] = []
        for queries, peer in pending:
            batch.extend(queries)
            owners.extend([peer] * len(queries))
        result = self.system.process(batch)
        self.stats.queries += len(batch)
        self.stats.batches += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.registry.counter(
                "repro_server_queries_total", help="Queries served over UDP"
            ).inc(len(batch))
            telemetry.registry.counter(
                "repro_server_batches_total", help="Coalesced server batches"
            ).inc()
            errors = len(batch) - result.ok_count
            if errors:
                telemetry.registry.counter(
                    "repro_server_query_errors_total",
                    help="Queries answered with an error status",
                ).inc(errors)
        # Regroup responses per peer, preserving per-peer order.  When the
        # engine produced the response-size column (vector/sharded), chunking
        # reads precomputed sizes instead of per-response wire_size calls.
        all_sizes = result.response_sizes
        by_peer: dict[tuple[str, int], list[Response]] = {}
        sizes_by_peer: dict[tuple[str, int], list[int]] = {}
        for i, (peer, response) in enumerate(zip(owners, result.responses)):
            by_peer.setdefault(peer, []).append(response)
            if all_sizes is not None:
                sizes_by_peer.setdefault(peer, []).append(all_sizes[i])
        for peer, responses in by_peer.items():
            for chunk in _chunk_responses(responses, sizes_by_peer.get(peer)):
                try:
                    self._socket.sendto(encode_responses(chunk), peer)
                    self.stats.datagrams_out += 1
                except OSError:  # pragma: no cover - peer vanished
                    break


def _chunk_responses(
    responses: list[Response], sizes: list[int] | None = None
) -> list[list[Response]]:
    """Split responses into datagram-sized groups (stream-order preserved).

    ``sizes`` is the engine's precomputed response-size column for these
    responses (same order); without it sizes come from ``wire_size``.
    """
    chunks: list[list[Response]] = []
    current: list[Response] = []
    size = 0
    for i, response in enumerate(responses):
        wire = sizes[i] if sizes is not None else response.wire_size
        if current and size + wire > MAX_RESPONSE_PAYLOAD:
            chunks.append(current)
            current, size = [], 0
        current.append(response)
        size += wire
    if current:
        chunks.append(current)
    return chunks
