"""A real UDP server front-end for the DIDO store.

Everything else in this package simulates the NIC; this module binds an
actual UDP socket and speaks the package's binary protocol
(:mod:`repro.kv.protocol`), so the library runs as a usable key-value
service: one datagram in (a batch of queries), one or more datagrams out
(the responses), processed through the full adaptive pipeline.

The paper's system batches queries for the GPU; a network server front-end
does the same here with **adaptive batch coalescing**: queries accumulate
until either the batch-size target (``batch_size``) is reached or the
coalescing deadline (``coalesce_us``, measured from the first arrival)
expires — whichever comes first.  Under heavy traffic batches fill to the
target and the deadline never fires (maximum kernel efficiency); under
light traffic the deadline bounds latency and the pipeline sees partial
batches.  Queries beyond the target carry over to the next batch, and the
carry-over depth, batch fill ratio, and (on sharded stores) shard
imbalance are exported as gauges so the coalescing behaviour is observable
via ``repro telemetry``.

Two wire planes share the loop (selected by ``wire=``):

* ``"columnar"`` (default) — each poll drains up to ``drain_limit``
  datagrams from the kernel and decodes the whole window in one pass with
  :func:`repro.net.wire.decode_window` into :class:`~repro.net.wire.QueryColumns`
  segments (zero per-query objects); responses go out through the
  single-pass columnar framer (:func:`~repro.net.wire.encode_response_window`
  + :func:`~repro.net.wire.chunk_response_payloads`).
* ``"legacy"`` — the original per-datagram
  :func:`~repro.kv.protocol.decode_queries` / per-:class:`Response`
  :func:`~repro.kv.protocol.encode_responses` object path, kept as the
  benchmark baseline and the semantic reference.

Either way a malformed datagram is dropped (never crashes the serve
loop): the peer is logged, ``stats.protocol_errors`` increments, and the
``repro_wire_parse_errors_total`` counter records it per wire plane.

Usage::

    server = DidoUDPServer(("127.0.0.1", 0), system=DidoSystem(...))
    with server:
        server.start()          # background thread
        ...                     # clients talk to server.address
    # or blocking: server.serve_forever()

See :mod:`repro.client` for the matching client and :mod:`repro.loadgen`
for the load-generator used by the wire benchmarks.
"""

from __future__ import annotations

import logging
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.core.dido import DidoSystem
from repro.errors import ConfigurationError, ProtocolError
from repro.kv.protocol import (
    Query,
    Response,
    ResponseStatus,
    decode_queries,
    encode_responses,
)
from repro.pipeline.functional import BatchResult
from repro.net.wire import (
    QueryColumns,
    RESPONSE_HEADER_BYTES,
    chunk_response_payloads,
    decode_window,
    encode_response_window,
)
from repro.telemetry import get_telemetry

logger = logging.getLogger("repro.server")

#: Largest datagram we attempt to receive (jumbo values are IP-fragmented).
MAX_DATAGRAM = 64 * 1024

#: How long the server waits to coalesce datagrams into one pipeline batch.
DEFAULT_BATCH_WINDOW_S = 0.002

#: Batch-size target: a batch is dispatched as soon as it holds this many
#: queries, even if the coalescing deadline has not expired.
DEFAULT_BATCH_SIZE = 4096

#: Responses per outgoing datagram are bounded by this payload size.
MAX_RESPONSE_PAYLOAD = 32 * 1024

#: Datagrams drained from the kernel per poll (one blocking receive plus
#: up to ``drain_limit - 1`` non-blocking ones).
DEFAULT_DRAIN_LIMIT = 64

#: Ask the kernel for this much socket receive buffer so bursts from the
#: load generator survive between polls (best-effort).
_RCVBUF_BYTES = 1 << 21


@dataclass
class ServerStats:
    """Operational counters for one server."""

    datagrams_in: int = 0
    datagrams_out: int = 0
    queries: int = 0
    batches: int = 0
    protocol_errors: int = 0
    #: Queries answered with a cluster WRONG_NODE redirect (the key is
    #: not owned under the server's current manifest).
    redirects: int = 0


class DidoUDPServer:
    """UDP front-end: datagrams of encoded queries in, responses out.

    Parameters
    ----------
    address:
        ``(host, port)`` to bind; port 0 picks a free port.
    system:
        The :class:`~repro.core.dido.DidoSystem` that processes batches; a
        default-sized one is created if omitted.
    batch_window_s:
        Coalescing deadline in seconds, measured from the first query of a
        batch; ``coalesce_us`` overrides it when given.
    engine:
        Functional execution backend for the default-created system (see
        :class:`~repro.pipeline.functional.FunctionalPipeline`); ignored
        when an explicit ``system`` is passed.
    batch_size:
        Dispatch a batch as soon as it holds this many queries (the
        adaptive cutoff); excess queries carry over to the next batch.
    coalesce_us:
        Coalescing deadline in microseconds (overrides ``batch_window_s``).
    shards:
        Shard count for the default-created system; ignored when an
        explicit ``system`` is passed.
    wire:
        ``"columnar"`` (default) for the zero-copy window decoder and
        single-pass response framer; ``"legacy"`` for the per-object
        codec path.
    drain_limit:
        Upper bound on datagrams taken from the kernel per poll.
    dedup:
        Collapse duplicate GET runs per batch in the default-created
        system (ignored when an explicit ``system`` is passed).
    hot_cache:
        Attach the skew-gated hot-key read cache to the default-created
        system (ignored when an explicit ``system`` is passed).
    heap:
        Value heap kind ("log"/"slab") for the default-created system
        (ignored when an explicit ``system`` is passed).  The log arena's
        compaction rides the server's 0.5 s maintenance tick.
    delta_index:
        Attach the write-absorbing delta index to the default-created
        system (ignored when an explicit ``system`` is passed).  Deltas
        merge at batch barriers and on the same 0.5 s maintenance tick.
    pipeline_depth:
        Window pipelining depth for procshard systems: with depth 2
        (the default when the system supports it) the serve loop submits
        window N+1 to the shard workers while window N's replies are
        still pending, completing (and transmitting) the oldest window
        only once the next is in flight — IPC transport hides under
        worker compute.  Depth 1 keeps the synchronous dispatch.  Cluster
        ownership filtering always runs synchronously regardless.
    """

    def __init__(
        self,
        address: tuple[str, int] = ("127.0.0.1", 0),
        system: DidoSystem | None = None,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        engine=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        coalesce_us: float | None = None,
        shards: int = 1,
        wire: str = "columnar",
        drain_limit: int = DEFAULT_DRAIN_LIMIT,
        dedup: bool = False,
        hot_cache: bool = False,
        heap: str = "log",
        delta_index: bool = False,
        pipeline_depth: int | None = None,
    ):
        if coalesce_us is not None:
            if coalesce_us < 0:
                raise ConfigurationError("coalesce deadline must be non-negative")
            batch_window_s = coalesce_us / 1e6
        if batch_window_s < 0:
            raise ConfigurationError("batch window must be non-negative")
        if batch_size < 1:
            raise ConfigurationError("batch size must be positive")
        if wire not in ("columnar", "legacy"):
            raise ConfigurationError(
                f"wire plane must be 'columnar' or 'legacy', not {wire!r}"
            )
        if drain_limit < 1:
            raise ConfigurationError("drain limit must be positive")
        if pipeline_depth is not None and pipeline_depth < 1:
            raise ConfigurationError("pipeline depth must be positive")
        self._owns_system = system is None
        self.system = system or DidoSystem(
            memory_bytes=64 << 20,
            expected_objects=65536,
            engine=engine,
            shards=shards,
            dedup=dedup,
            hot_cache=hot_cache,
            heap=heap,
            delta_index=delta_index,
        )
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, _RCVBUF_BYTES)
        except OSError:  # pragma: no cover - platform refuses; defaults apply
            pass
        self._socket.bind(address)
        self._socket.settimeout(0.1)
        self._batch_window_s = batch_window_s
        self._batch_size = batch_size
        self.wire = wire
        self._drain_limit = drain_limit
        #: Queries received but not yet dispatched (the carry-over queue):
        #: ``(segment, peer)`` groups, oldest first.  A segment is a
        #: ``list[Query]`` (legacy plane) or a
        #: :class:`~repro.net.wire.QueryColumns` slice (columnar plane);
        #: both support ``len`` and row slicing, which is all the
        #: coalescer needs.
        self._backlog: list[tuple[object, tuple[str, int]]] = []
        self._running = threading.Event()
        self._thread: threading.Thread | None = None
        self.stats = ServerStats()
        #: Cluster ownership view (duck-typed: ``misrouted_rows(keys)``,
        #: ``epoch``, ``redirect_value``); ``None`` serves every key.
        #: Swapped atomically by :class:`repro.cluster.serving.ClusterNode`
        #: on manifest install — the serve loop reads it once per window.
        self.ownership = None
        #: Called with each batch actually applied to the store (after the
        #: ownership filter); cluster migration uses it to track writes to
        #: keys in flight.  Exceptions are logged, never fatal.
        self.batch_hook = None
        #: Called once per serve-loop iteration (even idle ones); cluster
        #: migration advances its chunked copy state machine here, so the
        #: transfer runs in the serve thread and never races batch
        #: processing on the store.
        self.idle_hook = None
        #: Next worker health check (procshard stores); throttled so the
        #: per-window cost is one monotonic read.
        self._next_maintenance = 0.0
        if pipeline_depth is None:
            pipeline_depth = (
                2 if getattr(self.system, "supports_pipelining", False) else 1
            )
        self._pipeline_depth = pipeline_depth
        #: Submitted-but-unmerged windows, oldest first:
        #: ``(pending_handle, batch, pending_segments)``.  Completion is
        #: strictly FIFO so every peer still sees its responses in
        #: submission order.
        self._inflight_windows: deque = deque()

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._socket.getsockname()

    def __enter__(self) -> "DidoUDPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Serve on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise ConfigurationError("server already started")
        self._running.set()
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        logger.info("serving on %s:%d", *self.address)

    def stop(self) -> None:
        """Stop serving and close the socket."""
        self._running.clear()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        try:
            # Windows submitted before the stop still owe their peers
            # responses; the serve thread has exited, so drain here
            # (before the socket closes under the TX path).
            self._drain_inflight_windows()
        except Exception:  # pragma: no cover - teardown best-effort
            logger.exception("failed to drain in-flight windows on stop")
            self._inflight_windows.clear()
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - double close
            pass
        if self._owns_system:
            # The default-created system is ours to tear down; a procshard
            # store drains its workers and unlinks every arena here.
            self.system.close()
        logger.info(
            "stopped: %d queries in %d batches, %d protocol errors",
            self.stats.queries,
            self.stats.batches,
            self.stats.protocol_errors,
        )

    def serve_forever(self) -> None:
        """Blocking serve loop (also the body of the background thread)."""
        self._running.set()
        while self._running.is_set():
            try:
                self._serve_one_window()
            except ProtocolError as exc:  # pragma: no cover - belt and braces
                # Decode errors are handled per datagram inside the window;
                # this guard keeps any future decode path from killing the
                # serve loop on hostile input.
                self.stats.protocol_errors += 1
                logger.warning("dropping undecodable window: %s", exc)
            hook = self.idle_hook
            if hook is not None:
                try:
                    hook()
                except Exception:  # pragma: no cover - hook bug, not traffic
                    logger.exception("cluster idle hook failed")
            now = time.monotonic()
            if now >= self._next_maintenance:
                self._next_maintenance = now + 0.5
                try:
                    respawned = self.system.maintain()
                except Exception:  # pragma: no cover - maintenance bug
                    logger.exception("system maintenance failed")
                else:
                    if respawned:
                        logger.warning(
                            "respawned dead shard workers: %s", respawned
                        )

    # ------------------------------------------------------------- serving

    def _serve_one_window(self) -> None:
        """Coalesce one batch (size target or deadline) and process it.

        Accumulation starts from the carry-over backlog of the previous
        batch.  The deadline clock starts at the first query (whether
        carried over or freshly received), so a carried-over partial batch
        is never starved waiting for traffic that may not come.

        Each poll takes one blocking receive and then drains whatever else
        the kernel already queued (up to ``drain_limit`` datagrams) without
        blocking, so under load the whole burst is decoded as one window.
        """
        pending = self._backlog
        self._backlog = []
        count = sum(len(segment) for segment, _ in pending)
        deadline = (
            time.monotonic() + self._batch_window_s if pending else None
        )
        if deadline is None and self._inflight_windows:
            # Windows are in flight: cap the blocking wait at one coalesce
            # window so a traffic lull drains (and transmits) them quickly
            # instead of holding replies for the full poll timeout.
            deadline = time.monotonic() + self._batch_window_s
        polls = 0
        drained = 0
        while count < self._batch_size:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._socket.settimeout(max(remaining, 1e-4))
            try:
                payload, peer = self._socket.recvfrom(MAX_DATAGRAM)
            except socket.timeout:
                break
            except OSError:
                self._backlog = pending
                return  # socket closed under us during stop()
            payloads = [payload]
            peers = [peer]
            # Burst drain: take what the kernel already queued, no waiting.
            self._socket.settimeout(0.0)
            while len(payloads) < self._drain_limit:
                try:
                    payload, peer = self._socket.recvfrom(MAX_DATAGRAM)
                except (BlockingIOError, InterruptedError, socket.timeout):
                    break
                except OSError:
                    break  # closing; process what we already have
                payloads.append(payload)
                peers.append(peer)
            polls += 1
            drained += len(payloads)
            self.stats.datagrams_in += len(payloads)
            count += self._ingest(payloads, peers, pending)
            if deadline is None:
                deadline = time.monotonic() + self._batch_window_s
        self._socket.settimeout(0.1)
        if polls:
            telemetry = get_telemetry()
            if telemetry.enabled:
                telemetry.registry.gauge(
                    "repro_datagrams_per_poll",
                    help="Datagrams drained from the kernel per receive poll",
                ).set(drained / polls)
        if not pending:
            self._drain_inflight_windows()
            return
        batch = self._cut_batch(pending)
        self._process_window(batch)

    def _ingest(
        self,
        payloads: list[bytes],
        peers: list[tuple[str, int]],
        pending: list,
    ) -> int:
        """Decode one drained group of datagrams into ``pending`` segments.

        Returns the number of queries added.  Malformed datagrams are
        dropped with a log line naming the peer and the
        ``repro_wire_parse_errors_total`` counter; decode errors never
        propagate.
        """
        telemetry = get_telemetry()
        added = 0
        if self.wire == "columnar":
            t0 = time.perf_counter_ns()
            segments, errors = decode_window(payloads)
            parse_ns = time.perf_counter_ns() - t0
            for error in errors:
                self.stats.protocol_errors += 1
                logger.warning(
                    "dropping undecodable datagram from %s: %s",
                    peers[error.datagram],
                    error.message,
                )
            if telemetry.enabled:
                telemetry.registry.histogram(
                    "repro_wire_parse_ns",
                    help="Wire decode time per drained datagram window (ns)",
                ).observe(parse_ns)
                if errors:
                    telemetry.registry.counter(
                        "repro_wire_parse_errors_total",
                        help="Datagrams dropped as unparseable",
                    ).inc(len(errors), wire="columnar")
            for segment, peer in zip(segments, peers):
                if len(segment):
                    pending.append((segment, peer))
                    added += len(segment)
            return added
        t0 = time.perf_counter_ns()
        for payload, peer in zip(payloads, peers):
            try:
                queries = decode_queries(payload)
            except ProtocolError as exc:
                self.stats.protocol_errors += 1
                logger.warning("dropping undecodable datagram from %s: %s", peer, exc)
                if telemetry.enabled:
                    telemetry.registry.counter(
                        "repro_wire_parse_errors_total",
                        help="Datagrams dropped as unparseable",
                    ).inc(wire="legacy")
                continue
            if queries:
                pending.append((queries, peer))
                added += len(queries)
        if telemetry.enabled:
            telemetry.registry.histogram(
                "repro_wire_parse_ns",
                help="Wire decode time per drained datagram window (ns)",
            ).observe(time.perf_counter_ns() - t0)
        return added

    def _cut_batch(self, pending) -> list[tuple[object, tuple[str, int]]]:
        """Take up to ``batch_size`` queries; the excess becomes backlog.

        A datagram straddling the cutoff is split — its tail queries keep
        their peer attribution and run first in the next batch, so each
        peer still sees its responses in submission order.
        """
        batch: list[tuple[object, tuple[str, int]]] = []
        taken = 0
        for i, (segment, peer) in enumerate(pending):
            room = self._batch_size - taken
            if len(segment) <= room:
                batch.append((segment, peer))
                taken += len(segment)
            else:
                if room:
                    batch.append((segment[:room], peer))
                    taken += room
                self._backlog.append((segment[room:], peer))
                self._backlog.extend(pending[i + 1 :])
                break
        telemetry = get_telemetry()
        if telemetry.enabled:
            depth = sum(len(segment) for segment, _ in self._backlog)
            telemetry.registry.gauge(
                "repro_server_queue_depth",
                help="Queries carried over past the batch-size cutoff",
            ).set(depth)
            telemetry.registry.gauge(
                "repro_batch_fill_ratio",
                help="Dispatched batch size over the batch-size target",
            ).set(min(taken, self._batch_size) / self._batch_size)
        return batch

    def _process_window(self, pending) -> None:
        segments = [segment for segment, _ in pending]
        if len(segments) == 1 and isinstance(segments[0], QueryColumns):
            batch = segments[0]
        elif all(isinstance(segment, QueryColumns) for segment in segments):
            batch = QueryColumns.concat(segments)
        else:
            batch = []
            for segment in segments:
                if isinstance(segment, QueryColumns):
                    batch.extend(segment.to_queries())
                else:
                    batch.extend(segment)
        ownership = self.ownership
        if ownership is not None:
            # Cluster serving: ownership filtering (and migration's batch
            # hook) reason about one window at a time — run synchronously
            # behind any windows already in flight.
            self._drain_inflight_windows()
            result = self._process_owned(batch, ownership)
        elif (
            self._pipeline_depth > 1
            and self.batch_hook is None
            and getattr(self.system, "supports_pipelining", False)
        ):
            self._submit_window(batch, pending)
            return
        else:
            self._drain_inflight_windows()
            result = self.system.process(batch)
            self._observe_batch(batch)
        self._finish_window(pending, batch, result)

    def _submit_window(self, batch, pending) -> None:
        """Pipelined dispatch: hand the window to the shard workers and
        return to coalescing; the oldest window completes (merge + TX)
        once the in-flight count reaches the pipeline depth."""
        handle = self.system.process_submit(batch)
        self._inflight_windows.append((handle, batch, pending))
        while len(self._inflight_windows) >= self._pipeline_depth:
            self._complete_oldest_window()

    def _complete_oldest_window(self) -> None:
        handle, batch, pending = self._inflight_windows.popleft()
        result = self.system.process_collect(handle)
        self._observe_batch(batch)
        self._finish_window(pending, batch, result)

    def _drain_inflight_windows(self) -> None:
        while self._inflight_windows:
            self._complete_oldest_window()

    def _finish_window(self, pending, batch, result) -> None:
        """Stats, counters, and response TX for one completed window."""
        self.stats.queries += len(batch)
        self.stats.batches += 1
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.registry.counter(
                "repro_server_queries_total", help="Queries served over UDP"
            ).inc(len(batch))
            telemetry.registry.counter(
                "repro_server_batches_total", help="Coalesced server batches"
            ).inc()
            errors = len(batch) - result.ok_count
            if errors:
                telemetry.registry.counter(
                    "repro_server_query_errors_total",
                    help="Queries answered with an error status",
                ).inc(errors)
        if self.wire == "columnar" and result.response_statuses is not None:
            self._send_columnar(pending, result, telemetry)
        else:
            self._send_legacy(pending, result)

    def _observe_batch(self, batch) -> None:
        hook = self.batch_hook
        if hook is not None:
            try:
                hook(batch)
            except Exception:  # pragma: no cover - hook bug, not traffic
                logger.exception("cluster batch hook failed")

    def _process_owned(self, batch, ownership) -> BatchResult:
        """Ownership-filtered processing: apply owned rows to the store,
        answer the rest with ``WRONG_NODE`` redirects carrying the current
        manifest epoch, and merge both into one window-shaped result.

        Misrouted queries never touch the store — a SET routed to the
        wrong node during a membership change must not create a divergent
        replica.
        """
        if isinstance(batch, QueryColumns):
            keys = batch.keys
        else:
            keys = [q.key for q in batch]
        misrouted = ownership.misrouted_rows(keys)
        if not misrouted:
            result = self.system.process(batch)
            self._observe_batch(batch)
            return result
        self.stats.redirects += len(misrouted)
        telemetry = get_telemetry()
        if telemetry.enabled:
            telemetry.registry.counter(
                "repro_cluster_redirects_total",
                help="Queries answered with a WRONG_NODE redirect",
            ).inc(len(misrouted), node=getattr(ownership, "name", ""))
            telemetry.registry.gauge(
                "repro_cluster_redirect_rate",
                help="Redirected fraction of the last ownership-checked window",
            ).set(len(misrouted) / len(keys))
        redirect = Response(ResponseStatus.WRONG_NODE, ownership.redirect_value)
        misrouted_set = set(misrouted)
        owned_rows = [i for i in range(len(keys)) if i not in misrouted_set]
        if owned_rows:
            if isinstance(batch, QueryColumns):
                sub = QueryColumns(
                    [batch.qtypes[i] for i in owned_rows],
                    [batch.keys[i] for i in owned_rows],
                    [batch.values[i] for i in owned_rows],
                )
            else:
                sub = [batch[i] for i in owned_rows]
            inner = self.system.process(sub)
            self._observe_batch(sub)
        else:
            inner = None
        n = len(keys)
        code = ResponseStatus.WRONG_NODE.value
        size = RESPONSE_HEADER_BYTES + len(redirect.value)
        responses: list[Response] = [redirect] * n
        has_columns = inner is None or inner.response_statuses is not None
        statuses = [code] * n if has_columns else None
        values = [redirect.value] * n if has_columns else None
        sizes = [size] * n if has_columns else None
        if inner is not None:
            for local, row in enumerate(owned_rows):
                responses[row] = inner.responses[local]
            if has_columns:
                inner_statuses = inner.response_statuses
                inner_values = inner.response_values
                inner_sizes = inner.response_sizes
                for local, row in enumerate(owned_rows):
                    statuses[row] = inner_statuses[local]
                    values[row] = inner_values[local]
                    sizes[row] = inner_sizes[local]
        return BatchResult(
            responses,
            inner.config_label if inner is not None else "redirect-only",
            response_sizes=sizes,
            response_statuses=statuses,
            response_values=values,
        )

    def _send_columnar(self, pending, result, telemetry) -> None:
        """TX through the single-pass framer: one shared buffer, peer
        datagrams cut as ``(start, stop)`` row ranges over it."""
        t0 = time.perf_counter_ns()
        buffer, offsets = encode_response_window(
            result.response_statuses, result.response_values, result.response_sizes
        )
        # Contiguous row ranges per peer, in first-arrival order; adjacent
        # segments from the same peer merge into one range.
        ranges: dict[tuple[str, int], list[list[int]]] = {}
        order: list[tuple[str, int]] = []
        row = 0
        for segment, peer in pending:
            stop = row + len(segment)
            peer_ranges = ranges.get(peer)
            if peer_ranges is None:
                ranges[peer] = peer_ranges = []
                order.append(peer)
            if peer_ranges and peer_ranges[-1][1] == row:
                peer_ranges[-1][1] = stop
            else:
                peer_ranges.append([row, stop])
            row = stop
        payload_groups = [
            (peer, chunk_response_payloads(buffer, offsets, ranges[peer], MAX_RESPONSE_PAYLOAD))
            for peer in order
        ]
        frame_ns = time.perf_counter_ns() - t0
        if telemetry.enabled:
            telemetry.registry.histogram(
                "repro_wire_frame_ns",
                help="Columnar response framing time per batch (ns)",
            ).observe(frame_ns)
        for peer, payloads in payload_groups:
            for payload in payloads:
                try:
                    self._socket.sendto(payload, peer)
                    self.stats.datagrams_out += 1
                except OSError:  # pragma: no cover - peer vanished
                    break

    def _send_legacy(self, pending, result) -> None:
        """TX through the per-object codec (legacy plane, or an engine
        that produced no response columns)."""
        owners: list[tuple[str, int]] = []
        for segment, peer in pending:
            owners.extend([peer] * len(segment))
        # Regroup responses per peer, preserving per-peer order.  When the
        # engine produced the response-size column (vector/sharded), chunking
        # reads precomputed sizes instead of per-response wire_size calls.
        all_sizes = result.response_sizes
        by_peer: dict[tuple[str, int], list[Response]] = {}
        sizes_by_peer: dict[tuple[str, int], list[int]] = {}
        for i, (peer, response) in enumerate(zip(owners, result.responses)):
            by_peer.setdefault(peer, []).append(response)
            if all_sizes is not None:
                sizes_by_peer.setdefault(peer, []).append(all_sizes[i])
        for peer, responses in by_peer.items():
            for chunk in _chunk_responses(responses, sizes_by_peer.get(peer)):
                try:
                    self._socket.sendto(encode_responses(chunk), peer)
                    self.stats.datagrams_out += 1
                except OSError:  # pragma: no cover - peer vanished
                    break


def _chunk_responses(
    responses: list[Response], sizes: list[int] | None = None
) -> list[list[Response]]:
    """Split responses into datagram-sized groups (stream-order preserved).

    ``sizes`` is the engine's precomputed response-size column for these
    responses (same order); without it sizes come from ``wire_size``.
    """
    chunks: list[list[Response]] = []
    current: list[Response] = []
    size = 0
    for i, response in enumerate(responses):
        wire = sizes[i] if sizes is not None else response.wire_size
        if current and size + wire > MAX_RESPONSE_PAYLOAD:
            chunks.append(current)
            current, size = [], 0
        current.append(response)
        size += wire
    if current:
        chunks.append(current)
    return chunks
