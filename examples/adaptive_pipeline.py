#!/usr/bin/env python3
"""Watch DIDO re-plan its pipeline as the workload shifts.

Feeds three very different traffic phases through one system — tiny-object
read-heavy, large-object read-heavy, then write-heavy — and prints every
adaptation event the controller records: what changed, what pipeline was
chosen, and what the cost model expected from it.  This is the paper's
Figure 20 scenario driven through the *functional* store.

Run:  python examples/adaptive_pipeline.py [--telemetry-out trace.jsonl]

With ``--telemetry-out`` the run also records the full telemetry trace —
per-task stage spans, the replan audit trail, steal claims, and profiler
gauges — and writes it as JSONL for offline analysis.
"""

import argparse
import sys

from repro import DidoSystem, QueryStream, standard_workload


PHASES = [
    ("tiny objects, 95 % GET ", "K8-G95-S", 6),
    ("large objects, 95 % GET", "K128-G95-S", 6),
    ("tiny objects, 50 % GET ", "K8-G50-U", 6),
    ("back to the first phase", "K8-G95-S", 6),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--telemetry-out", metavar="PATH", help="write a JSONL telemetry trace"
    )
    args = parser.parse_args()
    if args.telemetry_out:
        from repro.telemetry import configure

        configure(enabled=True)

    system = DidoSystem(memory_bytes=96 << 20, expected_objects=60_000)

    for description, label, batches in PHASES:
        stream = QueryStream(standard_workload(label), num_keys=8_000, seed=3)
        for _ in range(batches):
            system.process(stream.next_batch(2048))
        report = system.report()
        print(f"[{description}] {label:11s} -> {report.current_pipeline}")

    print()
    print(f"adaptation events ({system.controller.replan_count} re-plans):")
    for event in system.controller.events:
        trigger = (
            "first plan"
            if event.trigger_change == float("inf")
            else f"{event.trigger_change:.0%} change"
        )
        marker = "*" if event.changed else " "
        print(
            f" {marker} batch {event.batch_index:3d}  [{trigger:>11s}]  "
            f"-> {event.new_label}  (est {event.estimated_mops:.1f} MOPS)"
        )

    changed = sum(1 for e in system.controller.events if e.changed)
    print()
    print(
        f"{changed} of {len(system.controller.events)} re-plans actually changed "
        f"the pipeline; steady phases planned nothing at all."
    )

    if args.telemetry_out:
        from repro.telemetry import export_jsonl, get_telemetry

        records = export_jsonl(get_telemetry(), args.telemetry_out)
        print(
            f"telemetry: wrote {records} records to {args.telemetry_out}",
            file=sys.stderr,
        )


if __name__ == "__main__":
    main()
