#!/usr/bin/env python3
"""Explore DIDO's configuration space for any workload.

Ranks every legal pipeline configuration with the cost model, measures the
top candidates with the detailed simulator, and prints both — showing what
the paper's Figure 10 quantifies: the model's favourite is (nearly) the
measured optimum, and the bottom of the table is an order of magnitude
slower than the top.

Run:  python examples/cost_model_explorer.py [WORKLOAD]
      python examples/cost_model_explorer.py K8-G95-U
"""

import sys

from repro import APU_A10_7850K, ConfigurationSearch, CostModel, PipelineExecutor
from repro.analysis.reporting import Table
from repro.core.profiler import WorkloadProfile
from repro.workloads.ycsb import standard_workload


def main() -> None:
    label = sys.argv[1] if len(sys.argv) > 1 else "K16-G95-S"
    spec = standard_workload(label)
    profile = WorkloadProfile.from_spec(spec)

    planner = ConfigurationSearch(CostModel(APU_A10_7850K))
    simulator = PipelineExecutor(APU_A10_7850K)

    ranked = planner.rank(profile)
    print(f"workload {label}: {len(ranked)} configurations evaluated\n")

    table = Table(
        f"Cost-model ranking for {label} (top 8 + worst, with measurements)",
        ["rank", "est_MOPS", "meas_MOPS", "pipeline"],
    )
    for i, entry in enumerate(ranked[:8], start=1):
        measured = simulator.measure(entry.config, profile)
        table.add(i, entry.throughput_mops, measured.throughput_mops, entry.config.label)
    worst = ranked[-1]
    measured_worst = simulator.measure(worst.config, profile)
    table.add(
        len(ranked), worst.throughput_mops, measured_worst.throughput_mops,
        worst.config.label,
    )
    print(table.render())

    best = ranked[0]
    best_measured = simulator.measure(best.config, profile)
    error = (best_measured.throughput_mops - best.throughput_mops) / best_measured.throughput_mops
    print()
    print(f"chosen plan    : {best.config.label}")
    print(f"model error    : {error:+.1%} (paper Figure 9 band: +-14 %)")
    print(
        f"spread         : best measured {best_measured.throughput_mops:.1f} MOPS vs "
        f"worst {measured_worst.throughput_mops:.1f} MOPS "
        f"({best_measured.throughput_mops / measured_worst.throughput_mops:.1f}x)"
    )


if __name__ == "__main__":
    main()
