#!/usr/bin/env python3
"""DIDO on Facebook-shaped Memcached traffic (USR and ETC).

The paper motivates dynamic pipelines with the Facebook workload analysis:
GET ratios from 18 % to 99 % and value sizes from two bytes to tens of
kilobytes.  This example runs approximations of two published traces — USR
(user-account status: 2-byte values, 99 % GET) and ETC (general cache: a
wide value-size mixture) — through a DIDO instance, showing how the
profiler characterises them and which pipeline the cost model picks for
each.

Run:  python examples/facebook_workloads.py
"""

from repro import DidoSystem
from repro.core.profiler import WorkloadProfile
from repro.workloads.facebook import (
    FACEBOOK_ETC,
    FACEBOOK_USR,
    FacebookQueryStream,
)


def run_trace(system: DidoSystem, workload, batches: int = 8) -> None:
    stream = FacebookQueryStream(workload, num_keys=20_000, seed=1)
    for _ in range(batches):
        system.process(stream.next_batch(3000))

    report = system.report()
    key_size, value_size = stream.average_sizes()
    print(f"--- {workload.name} ---")
    print(f"  trace shape : {workload.get_ratio:.0%} GET, "
          f"~{value_size:.0f} B average value, Zipf {workload.zipf_skew}")
    print(f"  chosen plan : {report.current_pipeline}")
    print(f"  model est.  : {report.estimated_mops:.1f} MOPS on the APU")

    # Analytical cross-check: what the detailed simulator measures for the
    # same traffic shape.
    profile = WorkloadProfile(
        get_ratio=workload.get_ratio,
        avg_key_size=key_size,
        avg_value_size=value_size,
        zipf_skew=workload.zipf_skew,
    )
    measured = system.measure_steady_state(profile)
    print(f"  simulated   : {measured.throughput_mops:.1f} MOPS "
          f"(GPU {measured.gpu_utilization:.0%} busy)")
    print()


def main() -> None:
    print("USR: the tiny-value, read-everything workload")
    system = DidoSystem(memory_bytes=64 << 20, expected_objects=60_000)
    run_trace(system, FACEBOOK_USR)

    print("ETC: the everything-at-once cache tier")
    system = DidoSystem(memory_bytes=256 << 20, expected_objects=60_000)
    run_trace(system, FACEBOOK_ETC)

    print(
        "Note how the two traces end up with different pipelines — exactly\n"
        "the diversity argument of the paper's introduction."
    )


if __name__ == "__main__":
    main()
