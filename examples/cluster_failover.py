#!/usr/bin/env python3
"""Node failure in a consistent-hash cluster shifts survivors' workloads.

The paper's motivation (Section II-C1) cites exactly this scenario: "when
machines go down, keys will be redistributed with consistent hashing, which
may change the workload characteristics of other IMKV nodes".  This example
runs a three-node DIDO fleet, kills one node mid-run, and shows the
survivors absorbing its key space — and their adaptation controllers
re-planning in response.

Run:  python examples/cluster_failover.py
"""

from repro.cluster import KVCluster
from repro.kv.protocol import QueryType
from repro.workloads.ycsb import QueryStream, standard_workload


def drive(cluster: KVCluster, stream: QueryStream, batches: int) -> None:
    for _ in range(batches):
        cluster.process(stream.next_batch(3000))


def show(cluster: KVCluster, heading: str) -> None:
    print(f"--- {heading} ---")
    for stat in cluster.stats():
        print(
            f"  {stat.name}: {stat.queries:6d} queries routed, "
            f"{stat.replans} re-plans, pipeline = {stat.pipeline}"
        )
    shares = cluster.ring.ownership_share()
    print("  ring shares:", {k: f"{v:.0%}" for k, v in sorted(shares.items())})
    print()


def main() -> None:
    cluster = KVCluster(["node-a", "node-b", "node-c"])
    stream = QueryStream(standard_workload("K16-G95-S"), num_keys=30_000, seed=11)

    print("warming the fleet with K16-G95-S traffic\n")
    drive(cluster, stream, batches=6)
    show(cluster, "before failure")

    print(">>> node-b goes down; consistent hashing reroutes its arcs <<<\n")
    cluster.fail_node("node-b")
    drive(cluster, stream, batches=6)
    show(cluster, "after failure")

    hit, miss = 0, 0
    batch = stream.next_batch(3000)
    for query, response in zip(batch, cluster.process(batch)):
        if query.qtype is QueryType.GET:
            if response.value:
                hit += 1
            else:
                miss += 1
    print(
        f"post-failover GETs: {hit} hits, {miss} misses "
        f"(rerouted keys miss until re-set — cache semantics)"
    )
    print(f"total controller re-plans across the fleet: {cluster.total_replans()}")


if __name__ == "__main__":
    main()
