#!/usr/bin/env python3
"""Quickstart: stand up a DIDO key-value store and talk to it.

Runs a small YCSB-B-style workload (95 % GET, Zipf-skewed keys) through the
full functional pipeline — NIC frames in, parsed queries, slab allocation,
cuckoo index, responses out — while the controller plans the pipeline with
the cost model.  Then asks the analytical side what the chosen configuration
achieves on the modelled APU.

Run:  python examples/quickstart.py
"""

from repro import DidoSystem, QueryStream, standard_workload
from repro.core.profiler import WorkloadProfile
from repro.kv.protocol import Query, QueryType, ResponseStatus


def main() -> None:
    # A store sized for a demo (the default uses the APU's full 1.9 GB).
    system = DidoSystem(memory_bytes=64 << 20, expected_objects=50_000)

    # --- individual queries -------------------------------------------------
    result = system.process(
        [
            Query(QueryType.SET, b"user:42", b'{"name": "alice"}'),
            Query(QueryType.GET, b"user:42"),
            Query(QueryType.GET, b"user:missing"),
            Query(QueryType.DELETE, b"user:42"),
        ]
    )
    for query, response in zip(
        ("SET", "GET", "GET miss", "DELETE"), result.responses
    ):
        print(f"{query:9s} -> {response.status.name:9s} {response.value!r}")

    # --- engine cross-check -------------------------------------------------
    # The functional plane executes batches on a columnar engine; pinning
    # engine="reference" replays the same queries on the preserved
    # per-query path, which must agree byte-for-byte.
    reference = DidoSystem(
        memory_bytes=64 << 20, expected_objects=50_000, engine="reference"
    )
    ref_result = reference.process(
        [
            Query(QueryType.SET, b"user:42", b'{"name": "alice"}'),
            Query(QueryType.GET, b"user:42"),
            Query(QueryType.GET, b"user:missing"),
            Query(QueryType.DELETE, b"user:42"),
        ]
    )
    statuses = [r.status for r in result.responses]
    assert statuses == [r.status for r in ref_result.responses]
    print("reference engine agrees:", [s.name for s in statuses])

    # --- a realistic batch workload ----------------------------------------
    spec = standard_workload("K16-G95-S")  # 16 B keys, 95 % GET, Zipf 0.99
    stream = QueryStream(spec, num_keys=10_000, seed=7)
    for _ in range(5):
        batch = stream.next_batch(4096)
        result = system.process(batch)
        hits = sum(1 for r in result.responses if r.status is ResponseStatus.OK)
        print(
            f"batch of {len(batch)}: {hits} GET hits, "
            f"pipeline = {result.config_label}"
        )

    print()
    print("system report:", system.report())

    # --- analytical steady state --------------------------------------------
    profile = WorkloadProfile.from_spec(spec)
    measurement = system.measure_steady_state(profile)
    print(
        f"modelled steady state on the APU: {measurement.throughput_mops:.1f} MOPS "
        f"(batch {measurement.batch_size}, "
        f"GPU {measurement.gpu_utilization:.0%} / CPU {measurement.cpu_utilization:.0%} busy)"
    )


if __name__ == "__main__":
    main()
